//! Packet buffer pool: a slab with a free list.
//!
//! Events used to carry [`Packet`]s by value, so every heap sift moved a
//! ~100-byte payload and every in-flight packet occupied fresh heap-node
//! storage. The pool parks in-flight packets in slot storage and lets
//! events carry a 4-byte [`PacketSlot`] instead, shrinking events to small
//! `Copy` values (cheap sifts) and reusing packet storage across the whole
//! run instead of churning the allocator once per event.
//!
//! The pool is deliberately dumb: `insert` hands out the most recently
//! freed slot (LIFO, for cache warmth), `take` frees it. Both are O(1).
//! Lookups are by `.get`, never by index, so a corrupted slot degrades to
//! a dropped event rather than a panic (this module is held to AL004
//! panic-freedom).

use crate::packet::Packet;

/// Opaque handle to a packet parked in the engine's packet pool.
///
/// Carried by [`crate::event::EventKind::ArriveAtLink`] and
/// [`crate::event::EventKind::Deliver`] in place of the packet itself.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PacketSlot(pub(crate) u32);

/// Slab of in-flight packets with LIFO slot reuse.
#[derive(Debug, Default)]
pub(crate) struct PacketPool {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
    live: usize,
    live_max: usize,
}

impl PacketPool {
    /// Park a packet; returns the slot to redeem it with.
    pub fn insert(&mut self, pkt: Packet) -> PacketSlot {
        self.live += 1;
        self.live_max = self.live_max.max(self.live);
        if let Some(idx) = self.free.pop() {
            if let Some(slot) = self.slots.get_mut(idx as usize) {
                *slot = Some(pkt);
                return PacketSlot(idx);
            }
            // A free-list entry pointing past the slab can only come from
            // engine corruption; grow the slab instead of panicking.
        }
        let idx = self.slots.len() as u32;
        self.slots.push(Some(pkt));
        PacketSlot(idx)
    }

    /// Redeem a slot, freeing it for reuse. `None` for an empty or unknown
    /// slot (an engine bug the caller turns into a dropped event).
    pub fn take(&mut self, slot: PacketSlot) -> Option<Packet> {
        let pkt = self.slots.get_mut(slot.0 as usize)?.take()?;
        self.free.push(slot.0);
        self.live = self.live.saturating_sub(1);
        Some(pkt)
    }

    /// High-water mark of simultaneously parked packets (how big the slab
    /// grew; the engine's in-flight-packet peak).
    pub fn live_max(&self) -> usize {
        self.live_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::packet::RouteSpec;
    use crate::AppId;
    use std::sync::Arc;

    fn pkt(seq: u64) -> Packet {
        let route = Arc::new(RouteSpec {
            links: vec![],
            dst: AppId(0),
        });
        Packet::new(100, FlowId(1), seq, route)
    }

    #[test]
    fn slots_round_trip_and_are_reused() {
        let mut pool = PacketPool::default();
        let a = pool.insert(pkt(1));
        let b = pool.insert(pkt(2));
        assert_ne!(a, b);
        assert_eq!(pool.take(a).map(|p| p.seq), Some(1));
        // LIFO reuse: the freed slot is handed out again.
        let c = pool.insert(pkt(3));
        assert_eq!(c, a);
        assert_eq!(pool.take(b).map(|p| p.seq), Some(2));
        assert_eq!(pool.take(c).map(|p| p.seq), Some(3));
    }

    #[test]
    fn double_take_returns_none() {
        let mut pool = PacketPool::default();
        let a = pool.insert(pkt(1));
        assert!(pool.take(a).is_some());
        assert!(pool.take(a).is_none());
        assert!(pool.take(PacketSlot(999)).is_none());
    }

    #[test]
    fn live_max_tracks_peak_not_current() {
        let mut pool = PacketPool::default();
        let slots: Vec<_> = (0..5).map(|i| pool.insert(pkt(i))).collect();
        for s in slots {
            pool.take(s);
        }
        let _ = pool.insert(pkt(9));
        assert_eq!(pool.live_max(), 5);
    }
}
