//! Store-and-forward link: one transmission server plus a byte-bounded
//! drop-tail FIFO, with per-link counters and optional fault injection.

use crate::monitor::UtilMonitor;
use crate::packet::Packet;
use crate::red::{RedConfig, RedState};
use crate::rng::Prng;
use std::collections::VecDeque;
use units::{Rate, TimeNs};

/// Index of a link within a [`crate::Simulator`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

/// Static configuration of a unidirectional link.
#[derive(Clone, Debug)]
pub struct LinkConfig {
    /// Transmission capacity.
    pub capacity: Rate,
    /// Propagation delay, added after a packet finishes transmission.
    pub prop_delay: TimeNs,
    /// Drop-tail queue limit in bytes (the in-service packet not counted).
    pub queue_limit_bytes: u64,
    /// Fault injection: probability of dropping an arriving packet.
    pub drop_prob: f64,
    /// Optional RED active queue management (default: plain drop-tail,
    /// the paper's assumption).
    pub red: Option<RedConfig>,
    /// Utilization-monitor window (MRTG uses 5 minutes).
    pub monitor_window: TimeNs,
    /// Human-readable name for reports.
    pub name: String,
}

impl LinkConfig {
    /// A link with the given capacity and propagation delay, a generous
    /// 8 MB buffer ("sufficiently buffered to avoid losses", §V-A), no
    /// fault injection, and a 5-minute monitor window.
    pub fn new(capacity: Rate, prop_delay: TimeNs) -> LinkConfig {
        LinkConfig {
            capacity,
            prop_delay,
            queue_limit_bytes: 8 * 1024 * 1024,
            drop_prob: 0.0,
            red: None,
            monitor_window: TimeNs::from_secs(300),
            name: String::new(),
        }
    }

    /// Enable RED AQM with the given parameters.
    pub fn with_red(mut self, red: RedConfig) -> Self {
        red.validate().expect("invalid RED parameters");
        self.red = Some(red);
        self
    }

    /// Set the drop-tail buffer size in bytes.
    pub fn with_queue_limit(mut self, bytes: u64) -> Self {
        self.queue_limit_bytes = bytes;
        self
    }

    /// Enable random-loss fault injection with the given probability.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.drop_prob = p;
        self
    }

    /// Set the utilization-monitor window.
    pub fn with_monitor_window(mut self, w: TimeNs) -> Self {
        self.monitor_window = w;
        self
    }

    /// Name the link (for experiment reports).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// Running counters of a link.
#[derive(Clone, Debug, Default)]
pub struct LinkStats {
    /// Packets fully transmitted.
    pub tx_packets: u64,
    /// Bytes fully transmitted.
    pub tx_bytes: u64,
    /// Packets dropped because the queue was full.
    pub drops_overflow: u64,
    /// Packets dropped by fault injection.
    pub drops_fault: u64,
    /// Total time the transmission server was busy, in nanoseconds.
    pub busy_ns: u64,
    /// High-water mark of queued bytes (excluding the packet in service).
    pub max_queue_bytes: u64,
}

impl LinkStats {
    /// Long-run utilization over `elapsed` (busy time / elapsed).
    pub fn utilization(&self, elapsed: TimeNs) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.busy_ns as f64 / elapsed.as_nanos() as f64
        }
    }
}

/// Outcome of a packet arriving at a link (returned to the engine).
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Arrival {
    /// Link was idle; transmission starts, completing at the given time.
    StartTx(TimeNs),
    /// Packet queued behind others.
    Queued,
    /// Packet dropped (queue overflow or fault injection).
    Dropped,
}

/// A unidirectional store-and-forward link.
#[derive(Debug)]
pub struct Link {
    cfg: LinkConfig,
    in_service: Option<Packet>,
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    /// Running counters.
    pub stats: LinkStats,
    monitor: UtilMonitor,
    red: Option<RedState>,
    rng: Prng,
}

impl Link {
    pub(crate) fn new(cfg: LinkConfig, rng: Prng) -> Link {
        let monitor = UtilMonitor::new(cfg.monitor_window);
        let red = cfg.red.map(RedState::new);
        Link {
            cfg,
            in_service: None,
            queue: VecDeque::new(),
            queued_bytes: 0,
            stats: LinkStats::default(),
            monitor,
            red,
            rng,
        }
    }

    /// RED state, if the link runs RED.
    pub fn red(&self) -> Option<&RedState> {
        self.red.as_ref()
    }

    /// The link's static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// The link's capacity.
    pub fn capacity(&self) -> Rate {
        self.cfg.capacity
    }

    /// Propagation delay.
    pub fn prop_delay(&self) -> TimeNs {
        self.cfg.prop_delay
    }

    /// Bytes currently waiting (excluding the packet in service).
    pub fn queue_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Bytes in the system: queued plus the packet in service.
    pub fn backlog_bytes(&self) -> u64 {
        self.queued_bytes + self.in_service.as_ref().map_or(0, |p| p.size as u64)
    }

    /// Packets currently waiting (excluding the packet in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The MRTG-style utilization monitor.
    pub fn monitor(&self) -> &UtilMonitor {
        &self.monitor
    }

    pub(crate) fn on_arrival(&mut self, pkt: Packet, now: TimeNs) -> Arrival {
        if self.cfg.drop_prob > 0.0 && self.rng.chance(self.cfg.drop_prob) {
            self.stats.drops_fault += 1;
            return Arrival::Dropped;
        }
        if let Some(red) = &mut self.red {
            if red.should_drop(self.queued_bytes, &mut self.rng) {
                self.stats.drops_overflow += 1;
                return Arrival::Dropped;
            }
        }
        if self.in_service.is_none() {
            debug_assert!(self.queue.is_empty());
            let done = now + self.cfg.capacity.tx_time(pkt.size);
            self.in_service = Some(pkt);
            return Arrival::StartTx(done);
        }
        if self.queued_bytes + pkt.size as u64 > self.cfg.queue_limit_bytes {
            self.stats.drops_overflow += 1;
            return Arrival::Dropped;
        }
        self.queued_bytes += pkt.size as u64;
        self.stats.max_queue_bytes = self.stats.max_queue_bytes.max(self.queued_bytes);
        self.queue.push_back(pkt);
        Arrival::Queued
    }

    /// Complete the in-service transmission. Returns the transmitted packet
    /// and, if another packet was waiting, the completion time of its
    /// transmission (which the engine must schedule).
    pub(crate) fn on_tx_done(&mut self, now: TimeNs) -> (Packet, Option<TimeNs>) {
        let pkt = self
            .in_service
            .take()
            .expect("TxDone on an idle link: engine bug");
        let tx_ns = self.cfg.capacity.tx_time_ns(pkt.size);
        self.stats.tx_packets += 1;
        self.stats.tx_bytes += pkt.size as u64;
        self.stats.busy_ns += tx_ns;
        self.monitor.record(now, pkt.size as u64);
        let next = self.queue.pop_front().map(|next_pkt| {
            self.queued_bytes -= next_pkt.size as u64;
            let done = now + self.cfg.capacity.tx_time(next_pkt.size);
            self.in_service = Some(next_pkt);
            done
        });
        (pkt, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppId;
    use crate::packet::{FlowId, RouteSpec};
    use std::sync::Arc;

    fn pkt(size: u32, seq: u64) -> Packet {
        Packet::new(
            size,
            FlowId(1),
            seq,
            Arc::new(RouteSpec {
                links: vec![LinkId(0)],
                dst: AppId(0),
            }),
        )
    }

    fn link(limit: u64) -> Link {
        Link::new(
            LinkConfig::new(Rate::from_mbps(8.0), TimeNs::from_millis(1)).with_queue_limit(limit),
            Prng::new(0),
        )
    }

    #[test]
    fn idle_link_starts_transmission_immediately() {
        let mut l = link(10_000);
        let now = TimeNs::from_millis(10);
        match l.on_arrival(pkt(1000, 0), now) {
            Arrival::StartTx(done) => {
                // 1000 B at 8 Mb/s = 1 ms
                assert_eq!(done, now + TimeNs::from_millis(1));
            }
            other => panic!("expected StartTx, got {other:?}"),
        }
        assert_eq!(l.queue_len(), 0);
        assert_eq!(l.backlog_bytes(), 1000);
    }

    #[test]
    fn busy_link_queues_fifo_and_chains_transmissions() {
        let mut l = link(10_000);
        let t0 = TimeNs::ZERO;
        assert!(matches!(
            l.on_arrival(pkt(1000, 0), t0),
            Arrival::StartTx(_)
        ));
        assert_eq!(l.on_arrival(pkt(500, 1), t0), Arrival::Queued);
        assert_eq!(l.on_arrival(pkt(500, 2), t0), Arrival::Queued);
        assert_eq!(l.queue_bytes(), 1000);

        let t1 = TimeNs::from_millis(1);
        let (done, next) = l.on_tx_done(t1);
        assert_eq!(done.seq, 0);
        // 500 B at 8 Mb/s = 0.5 ms
        assert_eq!(next, Some(t1 + TimeNs::from_micros(500)));
        let (done, next) = l.on_tx_done(t1 + TimeNs::from_micros(500));
        assert_eq!(done.seq, 1);
        assert!(next.is_some());
        let (done, next) = l.on_tx_done(t1 + TimeNs::from_millis(1));
        assert_eq!(done.seq, 2);
        assert_eq!(next, None);
        assert_eq!(l.stats.tx_packets, 3);
        assert_eq!(l.stats.tx_bytes, 2000);
        // busy: 1ms + 0.5ms + 0.5ms
        assert_eq!(l.stats.busy_ns, 2_000_000);
    }

    #[test]
    fn queue_overflow_drops_tail() {
        let mut l = link(1000);
        assert!(matches!(
            l.on_arrival(pkt(1000, 0), TimeNs::ZERO),
            Arrival::StartTx(_)
        ));
        assert_eq!(l.on_arrival(pkt(600, 1), TimeNs::ZERO), Arrival::Queued);
        // 600 + 600 > 1000: dropped
        assert_eq!(l.on_arrival(pkt(600, 2), TimeNs::ZERO), Arrival::Dropped);
        assert_eq!(l.stats.drops_overflow, 1);
        assert_eq!(l.stats.max_queue_bytes, 600);
    }

    #[test]
    fn fault_injection_drops_all_at_probability_one() {
        let mut l = Link::new(
            LinkConfig::new(Rate::from_mbps(8.0), TimeNs::ZERO).with_drop_prob(1.0),
            Prng::new(1),
        );
        for i in 0..10 {
            assert_eq!(l.on_arrival(pkt(100, i), TimeNs::ZERO), Arrival::Dropped);
        }
        assert_eq!(l.stats.drops_fault, 10);
    }

    #[test]
    fn utilization_accounting() {
        let mut l = link(100_000);
        assert!(matches!(
            l.on_arrival(pkt(1000, 0), TimeNs::ZERO),
            Arrival::StartTx(_)
        ));
        l.on_tx_done(TimeNs::from_millis(1));
        // Busy 1 ms out of 4 ms elapsed => 25%.
        assert!((l.stats.utilization(TimeNs::from_millis(4)) - 0.25).abs() < 1e-9);
        assert_eq!(l.stats.utilization(TimeNs::ZERO), 0.0);
    }
}
