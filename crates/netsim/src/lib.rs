//! # netsim — deterministic discrete-event packet network simulator
//!
//! A store-and-forward packet simulator in the spirit of NS-2, purpose-built
//! to reproduce the evaluation environment of Jain & Dovrolis (SIGCOMM 2002):
//! chains of FIFO drop-tail links with configurable capacity, propagation
//! delay and buffering, crossed by stochastic traffic, and probed by
//! applications (periodic UDP-like streams, packet trains, ping, TCP).
//!
//! Design points (see DESIGN.md §5):
//!
//! * **Deterministic**: event queues ordered by `(time, seq)`; all
//!   randomness flows from seeded [`rng::Prng`] instances. Two runs with the
//!   same seeds produce identical event sequences. Fleets of disjoint paths
//!   can shard the queue per connected component
//!   ([`Simulator::try_shard`]) without changing any per-path observable —
//!   see [`sim`]'s module docs for the sharding model.
//! * **Source routing**: packets carry an `Arc<RouteSpec>` (list of link ids
//!   plus destination application). The paper's topologies are fixed chains,
//!   so routing tables would be dead weight.
//! * **Output-queue link model**: each unidirectional [`link::Link`] is a
//!   transmission server plus a byte-bounded drop-tail FIFO; propagation
//!   delay is added after transmission completes — exactly the model used in
//!   the paper's Appendix.
//! * **Applications** are boxed state machines ([`app::App`]) dispatched by
//!   id; they can send packets and arm timers re-entrantly through
//!   [`app::Ctx`].
//! * **Built-in measurement**: per-link counters and MRTG-style windowed
//!   utilization ([`monitor::UtilMonitor`]), a ping prober ([`ping`]), and
//!   fault injection (random loss) for failure testing.
//!
//! ```
//! use netsim::{LinkConfig, Simulator};
//! use units::{Rate, TimeNs};
//!
//! let mut sim = Simulator::new(1);
//! let l = sim.add_link(LinkConfig::new(Rate::from_mbps(10.0), TimeNs::from_millis(5)));
//! let sink = sim.add_app(Box::new(netsim::app::CountingSink::default()));
//! let route = sim.route(&[l], sink);
//! sim.inject(netsim::Packet::new(1500, netsim::FlowId(1), 0, route), units::TimeNs::ZERO);
//! sim.run_until_idle(TimeNs::from_secs(1));
//! // 1500 B at 10 Mb/s = 1.2 ms transmission + 5 ms propagation
//! assert_eq!(sim.now(), TimeNs::from_micros(6200));
//! ```

#![forbid(unsafe_code)]

pub mod app;
pub mod event;
pub mod link;
pub mod monitor;
pub mod packet;
pub mod ping;
pub mod pool;
pub mod red;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod topology;

pub use app::{App, AppId, Ctx};
pub use link::{Link, LinkConfig, LinkId, LinkStats};
pub use packet::{FlowId, Packet, Payload, RouteSpec, TcpFlags, TcpHeader};
pub use ping::{EchoReflector, PingStats, Pinger, PingerConfig};
pub use pool::PacketSlot;
pub use red::{RedConfig, RedState};
pub use rng::Prng;
pub use shard::ShardRefusal;
pub use sim::{EngineStats, Simulator};
pub use topology::{Chain, ChainConfig};
