//! Random Early Detection (RED) active queue management.
//!
//! The paper's experiments assume drop-tail ("the common practice today",
//! §VII footnote 6). RED is provided as an extension: it keeps the
//! *average* queue between two thresholds by dropping arrivals with a
//! probability that rises linearly with the EWMA queue size
//! (Floyd & Jacobson 1993, simplified: no gentle mode, no idle-time
//! compensation — both documented simplifications).
//!
//! Relevance to avail-bw measurement: RED bounds queueing delay, so the
//! OWD ramps SLoPS relies on are shallower but still present — the
//! methodology needs *growth*, not deep buffers.

use crate::rng::Prng;

/// RED parameters.
#[derive(Clone, Copy, Debug)]
pub struct RedConfig {
    /// Minimum average-queue threshold in bytes (below: never drop).
    pub min_th_bytes: u64,
    /// Maximum average-queue threshold in bytes (above: always drop).
    pub max_th_bytes: u64,
    /// Drop probability as the average reaches `max_th_bytes`.
    pub max_p: f64,
    /// EWMA weight for the average queue estimate (classic 0.002).
    pub wq: f64,
}

impl RedConfig {
    /// Classic rule of thumb: `min = limit/4`, `max = 3·limit/4`,
    /// `max_p = 0.1`, `wq = 0.002`.
    pub fn for_queue_limit(limit_bytes: u64) -> RedConfig {
        RedConfig {
            min_th_bytes: limit_bytes / 4,
            max_th_bytes: limit_bytes * 3 / 4,
            max_p: 0.1,
            wq: 0.002,
        }
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_th_bytes >= self.max_th_bytes {
            return Err("RED needs min_th < max_th".into());
        }
        if !(0.0..=1.0).contains(&self.max_p) {
            return Err("max_p must be a probability".into());
        }
        if !(0.0..=1.0).contains(&self.wq) || self.wq == 0.0 {
            return Err("wq must be in (0, 1]".into());
        }
        Ok(())
    }
}

/// Per-link RED state.
#[derive(Clone, Debug)]
pub struct RedState {
    cfg: RedConfig,
    avg: f64,
    /// Arrivals dropped early by RED (before the hard limit).
    pub early_drops: u64,
}

impl RedState {
    pub(crate) fn new(cfg: RedConfig) -> RedState {
        RedState {
            cfg,
            avg: 0.0,
            early_drops: 0,
        }
    }

    /// Current EWMA queue estimate in bytes.
    pub fn avg_queue_bytes(&self) -> f64 {
        self.avg
    }

    /// Update the average with the instantaneous queue and decide whether
    /// to early-drop this arrival.
    pub(crate) fn should_drop(&mut self, queued_bytes: u64, rng: &mut Prng) -> bool {
        self.avg = (1.0 - self.cfg.wq) * self.avg + self.cfg.wq * queued_bytes as f64;
        if self.avg < self.cfg.min_th_bytes as f64 {
            return false;
        }
        if self.avg >= self.cfg.max_th_bytes as f64 {
            self.early_drops += 1;
            return true;
        }
        let span = (self.cfg.max_th_bytes - self.cfg.min_th_bytes) as f64;
        let p = self.cfg.max_p * (self.avg - self.cfg.min_th_bytes as f64) / span;
        if rng.chance(p) {
            self.early_drops += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(RedConfig::for_queue_limit(100_000).validate().is_ok());
        let bad = RedConfig {
            min_th_bytes: 10,
            max_th_bytes: 10,
            max_p: 0.1,
            wq: 0.002,
        };
        assert!(bad.validate().is_err());
        let bad = RedConfig {
            min_th_bytes: 1,
            max_th_bytes: 10,
            max_p: 1.5,
            wq: 0.002,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn no_drops_below_min_threshold() {
        let mut s = RedState::new(RedConfig::for_queue_limit(100_000));
        let mut rng = Prng::new(1);
        for _ in 0..1000 {
            assert!(!s.should_drop(10_000, &mut rng)); // well below min 25k
        }
        assert_eq!(s.early_drops, 0);
    }

    #[test]
    fn always_drops_above_max_threshold() {
        let cfg = RedConfig::for_queue_limit(100_000);
        let mut s = RedState::new(cfg);
        let mut rng = Prng::new(2);
        // Saturate the EWMA at a huge queue.
        for _ in 0..10_000 {
            s.should_drop(100_000, &mut rng);
        }
        assert!(s.avg_queue_bytes() > cfg.max_th_bytes as f64);
        let drops = (0..100)
            .filter(|_| s.should_drop(100_000, &mut rng))
            .count();
        assert_eq!(drops, 100);
    }

    #[test]
    fn drop_rate_scales_between_thresholds() {
        let cfg = RedConfig {
            min_th_bytes: 10_000,
            max_th_bytes: 90_000,
            max_p: 0.2,
            wq: 1.0, // instant averaging for the test
        };
        let mut rng = Prng::new(3);
        // Mid-way: expect ~ max_p/2 = 10% drops.
        let mut s = RedState::new(cfg);
        let n = 20_000;
        let drops = (0..n).filter(|_| s.should_drop(50_000, &mut rng)).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "mid-threshold drop rate {rate}");
    }

    #[test]
    fn ewma_tracks_slowly() {
        let mut s = RedState::new(RedConfig::for_queue_limit(100_000));
        let mut rng = Prng::new(4);
        s.should_drop(80_000, &mut rng);
        // One sample at wq=0.002 moves the average only a little.
        assert!(s.avg_queue_bytes() < 200.0);
    }
}
