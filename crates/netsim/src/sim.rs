//! The simulation engine: event loop, link forwarding, app dispatch — and
//! the sharded event queues that make fleet-scale simulations cheap.
//!
//! # Sharding model
//!
//! A fleet of disjoint paths needs no total event order: events on path A
//! never causally affect path B. The engine therefore partitions the
//! topology into connected components (tracked by [`crate::shard`]'s
//! union-find as routes and binds are created) and, on
//! [`Simulator::try_shard`], gives each component its own event queue.
//! Shards are drained round-robin per time slice ([`Simulator::run_until`]),
//! so a fleet of N disjoint paths pays N *small* heap operations where the
//! single queue paid one *global* one — the win is O(log total) →
//! O(log per-path), measured in op counts ([`EngineStats`]) because this
//! is a single-core engine.
//!
//! Sharding never changes results where it is allowed to engage:
//!
//! * **Refusal**: topologies whose links form one component (e.g. every
//!   path crosses a shared tight link) refuse to shard
//!   ([`ShardRefusal::SingleComponent`]) and stay on the always-correct
//!   single queue. So do topologies with apps the planner cannot anchor.
//! * **Bit identity**: on a sharded run, per-component event order is the
//!   single-queue order restricted to that component (the freeze splits
//!   the pending queue in pop order; per-shard sequence numbers preserve
//!   relative order from then on), so every per-path observable —
//!   estimates, traces, link stats — is bit-identical to the single-queue
//!   engine. Only the interleaving *between* independent components (and
//!   the unobserved global packet-id assignment order) differs.
//! * **Collapse**: if the topology changes mid-run in a way that connects
//!   two shards (a new cross-shard route) or produces events the plan
//!   cannot place, the engine deterministically folds all shards back
//!   into one queue at the next API boundary and keeps going —
//!   correctness never depends on the partition staying valid.

use crate::app::{App, AppId, Ctx};
use crate::event::{Event, EventKind, EventQueue, QueueStats};
use crate::link::{Arrival, Link, LinkConfig, LinkId};
use crate::packet::{Packet, RouteSpec};
use crate::pool::PacketPool;
use crate::rng::Prng;
use crate::shard::{ShardRefusal, TopoMap, SHARD_NONE};
use std::any::Any;
use std::cell::RefCell;
use std::sync::Arc;
use units::TimeNs;

/// One event-queue shard: a queue plus its own clock (the time of the last
/// event it dispatched; all shard clocks are aligned at run boundaries).
#[derive(Debug)]
struct Shard {
    queue: EventQueue,
    now: TimeNs,
}

/// Aggregated engine counters: throughput, heap-op, and pool metrics.
///
/// Plain data — netsim is sans-IO, so drivers (e.g. the monitord in-sim
/// fleet driver) drain this into their own telemetry registries, mirroring
/// the `take_trace()` idiom.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events dispatched since construction.
    pub events_processed: u64,
    /// Real `BinaryHeap` pushes across all queues (front-slot placements
    /// excluded).
    pub heap_pushes: u64,
    /// Real `BinaryHeap` pops across all queues (front-slot serves
    /// excluded).
    pub heap_pops: u64,
    /// Pushes and pops served by the one-element front slot, bypassing
    /// the heap entirely.
    pub front_hits: u64,
    /// Sum over heap ops of ceil(log2(depth)): a comparison-cost proxy
    /// that captures the log(global) → log(shard) win sharding buys even
    /// when the raw op count is unchanged.
    pub heap_cmp_weight: u64,
    /// Deepest any single event queue got (front slot included).
    pub heap_max_depth: usize,
    /// Number of event-queue shards (1 = the single-queue engine).
    pub shards: usize,
    /// High-water mark of simultaneously in-flight pooled packets.
    pub pool_live_max: usize,
}

impl EngineStats {
    /// Total real heap operations (pushes + pops).
    pub fn heap_ops(&self) -> u64 {
        self.heap_pushes + self.heap_pops
    }

    /// Real heap operations per dispatched event (0 when idle).
    pub fn heap_ops_per_event(&self) -> f64 {
        if self.events_processed == 0 {
            0.0
        } else {
            self.heap_ops() as f64 / self.events_processed as f64
        }
    }

    /// Heap comparison weight per dispatched event (0 when idle).
    pub fn cmp_weight_per_event(&self) -> f64 {
        if self.events_processed == 0 {
            0.0
        } else {
            self.heap_cmp_weight as f64 / self.events_processed as f64
        }
    }
}

/// Engine state shared with applications through [`Ctx`]: clock, event
/// queues, links, and the packet pool. Kept separate from the app table so
/// apps can be dispatched with `&mut SimCore` without aliasing themselves.
#[derive(Debug)]
pub struct SimCore {
    pub(crate) now: TimeNs,
    shards: Vec<Shard>,
    /// Owning shard per link (parallel to `links`; all zeros when the
    /// engine runs a single queue).
    link_shard: Vec<u32>,
    /// Owning shard per app id.
    app_shard: Vec<u32>,
    /// Shard currently dispatching (valid while `in_dispatch`).
    current_shard: u32,
    in_dispatch: bool,
    /// An in-dispatch push crossed into another shard this pass: the
    /// round-robin loop must rescan before declaring the slice done.
    rescan: bool,
    pub(crate) links: Vec<Link>,
    pool: PacketPool,
    /// Union-find topology map. In a `RefCell` because
    /// [`Simulator::route`] takes `&self` but must record the union; the
    /// hot event path never touches it (it reads the materialized
    /// `link_shard` / `app_shard` tables instead).
    topo: RefCell<TopoMap>,
    /// Counters absorbed from queues retired by freeze/collapse.
    carried: QueueStats,
    next_pkt_id: u64,
    events_processed: u64,
}

impl SimCore {
    /// The shard an event belongs to. Only meaningful input reaches here:
    /// the public API sanitizes external pushes, and in-dispatch pushes
    /// are covered by the closure invariant (see [`SimCore::push`]).
    fn target_shard(&self, kind: &EventKind) -> u32 {
        if self.shards.len() <= 1 {
            return 0;
        }
        match kind {
            EventKind::ArriveAtLink { link, .. } | EventKind::TxDone { link } => self
                .link_shard
                .get(link.0 as usize)
                .copied()
                .unwrap_or(SHARD_NONE),
            EventKind::Deliver { app, .. } | EventKind::Timer { app, .. } => self
                .app_shard
                .get(app.0 as usize)
                .copied()
                .unwrap_or(SHARD_NONE),
        }
    }

    fn push(&mut self, time: TimeNs, kind: EventKind) {
        let s = self.target_shard(&kind);
        assert!(
            s != SHARD_NONE,
            "event targets a node outside every shard (route it, or bind it, \
             before scheduling into it)"
        );
        let s = s as usize;
        if self.in_dispatch && s as u32 != self.current_shard {
            // A cross-shard push (an app sending on a route that spans
            // components). Sound only if it lands in the target shard's
            // future; the round-robin pass rescans to pick it up.
            assert!(
                time >= self.shards[s].now,
                "cross-shard event into the past: the topology violated the \
                 shard closure invariant (bind routes before sharding)"
            );
            self.rescan = true;
        }
        self.shards[s].queue.push(time, kind);
    }

    /// Inject a packet at `at` (≥ now): stamps id and `sent_at`, then
    /// schedules its arrival at the first link of its route (or direct
    /// delivery for an empty route).
    pub(crate) fn inject(&mut self, mut pkt: Packet, at: TimeNs) {
        assert!(at >= self.now, "cannot inject into the past");
        pkt.id = self.next_pkt_id;
        self.next_pkt_id += 1;
        pkt.sent_at = at;
        pkt.hop = 0;
        match pkt.next_link() {
            Some(link) => {
                let slot = self.pool.insert(pkt);
                self.push(at, EventKind::ArriveAtLink { link, slot });
            }
            None => {
                let app = pkt.route.dst;
                let slot = self.pool.insert(pkt);
                self.push(at, EventKind::Deliver { app, slot });
            }
        }
    }

    pub(crate) fn schedule_timer(&mut self, app: AppId, at: TimeNs, token: u64) {
        assert!(at >= self.now, "cannot arm a timer in the past");
        self.push(at, EventKind::Timer { app, token });
    }
}

/// The discrete-event simulator. See the crate docs for an overview and
/// the module docs for the sharding model.
pub struct Simulator {
    core: SimCore,
    apps: Vec<Option<Box<dyn App>>>,
    /// Apps retired with [`Simulator::remove_app`]: their slots are `None`
    /// and events still addressed to them are silently dropped.
    retired: Vec<bool>,
    master_rng: Prng,
    rng_streams_taken: u64,
}

impl Simulator {
    /// Create a simulator; `seed` roots all randomness (links, and any
    /// [`Prng`] handed out by [`Simulator::rng`]). Starts on the
    /// single-queue engine; see [`Simulator::try_shard`].
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            core: SimCore {
                now: TimeNs::ZERO,
                shards: vec![Shard {
                    queue: EventQueue::default(),
                    now: TimeNs::ZERO,
                }],
                link_shard: Vec::new(),
                app_shard: Vec::new(),
                current_shard: 0,
                in_dispatch: false,
                rescan: false,
                links: Vec::new(),
                pool: PacketPool::default(),
                topo: RefCell::new(TopoMap::default()),
                carried: QueueStats::default(),
                next_pkt_id: 0,
                events_processed: 0,
            },
            apps: Vec::new(),
            retired: Vec::new(),
            master_rng: Prng::new(seed),
            rng_streams_taken: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> TimeNs {
        self.core.now
    }

    /// Total events processed so far (engine throughput metric).
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Aggregated engine counters: events, heap ops (per queue shard),
    /// front-slot hits, pool high-water mark. Plain data for drivers to
    /// drain into their telemetry.
    pub fn engine_stats(&self) -> EngineStats {
        let mut q = self.core.carried;
        for s in &self.core.shards {
            q.absorb(s.queue.stats());
        }
        EngineStats {
            events_processed: self.core.events_processed,
            heap_pushes: q.heap_pushes,
            heap_pops: q.heap_pops,
            front_hits: q.front_hits,
            heap_cmp_weight: q.cmp_weight,
            heap_max_depth: q.max_depth,
            shards: self.core.shards.len(),
            pool_live_max: self.core.pool.live_max(),
        }
    }

    /// Number of event-queue shards (1 = single-queue engine).
    pub fn shards(&self) -> usize {
        self.core.shards.len()
    }

    fn is_sharded(&self) -> bool {
        self.core.shards.len() > 1
    }

    /// Derive a fresh deterministic RNG (for traffic sources etc.).
    pub fn rng(&mut self) -> Prng {
        self.rng_streams_taken += 1;
        self.master_rng.derive(0xABCD_0000 + self.rng_streams_taken)
    }

    /// Add a link; returns its id.
    pub fn add_link(&mut self, cfg: LinkConfig) -> LinkId {
        let id = LinkId(self.core.links.len() as u32);
        let rng = self.master_rng.derive(0x11_0000 + id.0 as u64);
        self.core.links.push(Link::new(cfg, rng));
        self.core.topo.get_mut().add_link();
        // Post-freeze links start outside every shard until a route or
        // bind places them (or forces a collapse).
        let shard = if self.is_sharded() { SHARD_NONE } else { 0 };
        self.core.link_shard.push(shard);
        id
    }

    /// Access a link (stats, monitor, queue state).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.core.links[id.0 as usize]
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.core.links.len()
    }

    /// Add an application; returns its id.
    pub fn add_app(&mut self, app: Box<dyn App>) -> AppId {
        let id = AppId(self.apps.len() as u32);
        self.apps.push(Some(app));
        self.retired.push(false);
        self.core.topo.get_mut().add_app();
        let shard = if self.is_sharded() { SHARD_NONE } else { 0 };
        self.core.app_shard.push(shard);
        id
    }

    /// Permanently retire an application, returning it for final
    /// inspection. Events still addressed to it — packets in flight, armed
    /// timers, in whichever shard owns them — are dropped on delivery,
    /// like traffic to a host that went away. Long-running experiments
    /// (the monitoring daemon installs a fresh session app per
    /// measurement) use this to keep the app table from accumulating
    /// finished sessions.
    ///
    /// Panics if the app is currently being dispatched or was already
    /// removed.
    pub fn remove_app(&mut self, id: AppId) -> Box<dyn App> {
        let app = self.apps[id.0 as usize]
            .take()
            .expect("app already removed or being dispatched");
        self.retired[id.0 as usize] = true;
        app
    }

    /// Downcast an application to its concrete type (panics on mismatch —
    /// that is always an experiment-code bug).
    pub fn app<T: App>(&self, id: AppId) -> &T {
        let app = self.apps[id.0 as usize]
            .as_ref()
            .expect("app is being dispatched or was removed");
        let any: &dyn Any = app.as_ref();
        any.downcast_ref::<T>().expect("app type mismatch")
    }

    /// Mutable variant of [`Simulator::app`].
    pub fn app_mut<T: App>(&mut self, id: AppId) -> &mut T {
        let app = self.apps[id.0 as usize]
            .as_mut()
            .expect("app is being dispatched or was removed");
        let any: &mut dyn Any = app.as_mut();
        any.downcast_mut::<T>().expect("app type mismatch")
    }

    /// Build a route over the given links ending at `dst`. Also records
    /// the connectivity for the shard planner: the route's links and its
    /// destination join one component.
    pub fn route(&self, links: &[LinkId], dst: AppId) -> Arc<RouteSpec> {
        for l in links {
            assert!(
                (l.0 as usize) < self.core.links.len(),
                "route references unknown link {l:?}"
            );
        }
        self.core.topo.borrow_mut().union_route(links, dst);
        Arc::new(RouteSpec {
            links: links.to_vec(),
            dst,
        })
    }

    /// Declare that these links belong to one component even though no
    /// single route spans them (e.g. a chain's forward and reverse
    /// directions). Required before [`Simulator::try_shard`] can place
    /// route-less links.
    pub fn bind_links(&mut self, links: &[LinkId]) {
        for l in links {
            assert!(
                (l.0 as usize) < self.core.links.len(),
                "bind references unknown link {l:?}"
            );
        }
        self.core.topo.get_mut().union_links(links);
        self.sync_topology();
    }

    /// Anchor an app to the component of the route it sends on. Pure
    /// senders (cross-traffic sources) are never route *destinations*, so
    /// without a bind the shard planner cannot prove where their packets
    /// and timers go and refuses to shard.
    pub fn bind_app(&mut self, app: AppId, route: &RouteSpec) {
        assert!((app.0 as usize) < self.apps.len(), "bind of unknown app");
        self.core
            .topo
            .get_mut()
            .union_app_route(app, &route.links, route.dst);
        self.sync_topology();
    }

    /// Partition the event queue by connected component. Returns the
    /// number of shards, or the reason the topology cannot be partitioned
    /// (in which case the single-queue engine keeps running — a refusal
    /// is a fallback, not a failure). Pending events are redistributed to
    /// their owning shards in pop order, which preserves per-component
    /// event order exactly (the bit-identity contract).
    pub fn try_shard(&mut self) -> Result<usize, ShardRefusal> {
        self.sync_topology();
        if self.is_sharded() {
            return Ok(self.core.shards.len());
        }
        let (link_shard, app_shard, count) = self.core.topo.get_mut().freeze()?;
        let now = self.core.now;
        let old = self
            .core
            .shards
            .pop()
            .expect("engine always has at least one shard");
        let (events, stats) = old.queue.into_events();
        self.core.carried.absorb(&stats);
        self.core.shards = (0..count)
            .map(|_| Shard {
                queue: EventQueue::default(),
                now,
            })
            .collect();
        self.core.link_shard = link_shard;
        self.core.app_shard = app_shard;
        for ev in events {
            let s = self.core.target_shard(&ev.kind);
            assert!(s != SHARD_NONE, "freeze left a pending event unplaced");
            self.core.shards[s as usize].queue.seed(ev.time, ev.kind);
        }
        Ok(count)
    }

    /// Fold every shard back into one queue, deterministically: pending
    /// events merge in `(time, shard, seq)` order. The topology map keeps
    /// accumulating, so a later [`Simulator::try_shard`] may re-partition.
    fn collapse(&mut self) {
        let shards = std::mem::take(&mut self.core.shards);
        let mut all: Vec<(TimeNs, usize, u64, EventKind)> = Vec::new();
        for (i, s) in shards.into_iter().enumerate() {
            let (evs, stats) = s.queue.into_events();
            self.core.carried.absorb(&stats);
            for ev in evs {
                all.push((ev.time, i, ev.seq, ev.kind));
            }
        }
        all.sort_by_key(|&(t, i, q, _)| (t, i, q));
        let mut queue = EventQueue::default();
        for (t, _, _, kind) in all {
            queue.seed(t, kind);
        }
        self.core.shards = vec![Shard {
            queue,
            now: self.core.now,
        }];
        for s in &mut self.core.link_shard {
            *s = 0;
        }
        for s in &mut self.core.app_shard {
            *s = 0;
        }
        self.core.topo.get_mut().unfreeze();
    }

    /// Apply pending topology-map changes before touching the queues:
    /// collapse if a post-freeze union made the partition unsound,
    /// re-materialize the shard tables if it merely grew.
    fn sync_topology(&mut self) {
        let (frozen, dirty, collapse) = {
            let t = self.core.topo.borrow();
            (t.frozen, t.dirty, t.collapse_pending)
        };
        if collapse {
            self.collapse();
        } else if frozen && dirty {
            let (link_shard, app_shard) = self.core.topo.get_mut().materialize();
            self.core.link_shard = link_shard;
            self.core.app_shard = app_shard;
        }
    }

    /// Collapse if routing this route's first hop (or destination) would
    /// hit a node outside every shard.
    fn ensure_route_placed(&mut self, route: &RouteSpec) {
        if !self.is_sharded() {
            return;
        }
        self.core
            .topo
            .get_mut()
            .union_route(&route.links, route.dst);
        self.sync_topology();
        if !self.is_sharded() {
            return;
        }
        let target = match route.links.first() {
            Some(l) => self
                .core
                .link_shard
                .get(l.0 as usize)
                .copied()
                .unwrap_or(SHARD_NONE),
            None => self
                .core
                .app_shard
                .get(route.dst.0 as usize)
                .copied()
                .unwrap_or(SHARD_NONE),
        };
        if target == SHARD_NONE {
            // A component born after the freeze: no shard can own it.
            self.core.topo.get_mut().collapse_pending = true;
            self.sync_topology();
        }
    }

    /// Inject a packet from outside the simulation at an absolute time
    /// (≥ now). Used by probe transports to realize perfectly periodic
    /// streams. On a sharded engine the route is first recorded with the
    /// planner (a route that spans shards or lands outside every shard
    /// collapses the engine back to one queue first).
    pub fn inject(&mut self, pkt: Packet, at: TimeNs) {
        self.ensure_route_placed(&pkt.route);
        self.core.inject(pkt, at);
    }

    /// Arm an application timer at an absolute time. Used to kick off
    /// apps. On a sharded engine an app no shard owns (added after the
    /// freeze, never routed) collapses the engine back to one queue
    /// first.
    pub fn schedule_timer(&mut self, app: AppId, at: TimeNs, token: u64) {
        if self.is_sharded() {
            self.sync_topology();
            if self.is_sharded()
                && self
                    .core
                    .app_shard
                    .get(app.0 as usize)
                    .copied()
                    .unwrap_or(SHARD_NONE)
                    == SHARD_NONE
            {
                self.core.topo.get_mut().collapse_pending = true;
                self.sync_topology();
            }
        }
        self.core.schedule_timer(app, at, token);
    }

    /// Pop and dispatch the next event of shard `s`. The global clock
    /// tracks the event being dispatched (apps observe their own shard's
    /// time through [`Ctx::now`]); shard clocks are re-aligned at run
    /// boundaries.
    fn step_shard(&mut self, s: usize) -> bool {
        let Some(ev) = self.core.shards[s].queue.pop() else {
            return false;
        };
        debug_assert!(
            ev.time >= self.core.shards[s].now,
            "shard queue went backwards"
        );
        self.core.now = ev.time;
        self.core.shards[s].now = ev.time;
        self.core.events_processed += 1;
        self.core.in_dispatch = true;
        self.core.current_shard = s as u32;
        self.dispatch(ev);
        self.core.in_dispatch = false;
        true
    }

    /// Process a single event — the globally earliest pending one (ties
    /// broken by shard index, then scheduling order). Returns false if
    /// every queue is empty.
    pub fn step(&mut self) -> bool {
        self.sync_topology();
        let next = self
            .core
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.queue.peek_time().map(|t| (t, i)))
            .min();
        match next {
            Some((_, i)) => self.step_shard(i),
            None => false,
        }
    }

    fn dispatch(&mut self, ev: Event) {
        match ev.kind {
            EventKind::ArriveAtLink { link, slot } => {
                let Some(pkt) = self.core.pool.take(slot) else {
                    debug_assert!(false, "arrival event with an empty packet slot");
                    return;
                };
                let l = &mut self.core.links[link.0 as usize];
                if let Arrival::StartTx(done) = l.on_arrival(pkt, ev.time) {
                    self.core.push(done, EventKind::TxDone { link });
                }
            }
            EventKind::TxDone { link } => {
                let l = &mut self.core.links[link.0 as usize];
                let prop = l.prop_delay();
                let (mut pkt, next_tx) = l.on_tx_done(ev.time);
                if let Some(done) = next_tx {
                    self.core.push(done, EventKind::TxDone { link });
                }
                pkt.hop += 1;
                let arrive = ev.time + prop;
                match pkt.next_link() {
                    Some(next) => {
                        let slot = self.core.pool.insert(pkt);
                        self.core
                            .push(arrive, EventKind::ArriveAtLink { link: next, slot });
                    }
                    None => {
                        let app = pkt.route.dst;
                        let slot = self.core.pool.insert(pkt);
                        self.core.push(arrive, EventKind::Deliver { app, slot });
                    }
                }
            }
            EventKind::Deliver { app, slot } => {
                let Some(pkt) = self.core.pool.take(slot) else {
                    debug_assert!(false, "delivery event with an empty packet slot");
                    return;
                };
                self.with_app(app, |a, ctx| a.on_packet(ctx, pkt));
            }
            EventKind::Timer { app, token } => {
                self.with_app(app, |a, ctx| a.on_timer(ctx, token));
            }
        }
    }

    fn with_app<F: FnOnce(&mut Box<dyn App>, &mut Ctx<'_>)>(&mut self, id: AppId, f: F) {
        if self.retired[id.0 as usize] {
            return; // stale event for a removed app: drop it
        }
        let slot = &mut self.apps[id.0 as usize];
        let mut app = slot.take().expect("re-entrant dispatch of the same app");
        let mut ctx = Ctx {
            core: &mut self.core,
            id,
        };
        f(&mut app, &mut ctx);
        self.apps[id.0 as usize] = Some(app);
    }

    /// Drain every shard's events at ≤ `t`, round-robin, rescanning while
    /// cross-shard pushes land new work in the slice. Returns whether any
    /// event was processed.
    fn drain_until(&mut self, t: TimeNs) -> bool {
        let mut any = false;
        loop {
            self.core.rescan = false;
            let mut progressed = false;
            for s in 0..self.core.shards.len() {
                while self.core.shards[s]
                    .queue
                    .peek_time()
                    .is_some_and(|next| next <= t)
                {
                    self.step_shard(s);
                    progressed = true;
                }
            }
            any |= progressed;
            if !progressed || !self.core.rescan {
                return any;
            }
        }
    }

    /// Run until the clock reaches `t` (processing every event at ≤ t on
    /// every shard), then set all clocks to exactly `t`.
    pub fn run_until(&mut self, t: TimeNs) {
        self.sync_topology();
        self.drain_until(t);
        debug_assert!(self.core.shards.iter().all(|s| s.now <= t));
        for s in &mut self.core.shards {
            s.now = t;
        }
        self.core.now = t;
    }

    /// Run until every event queue drains or the clock would pass
    /// `limit`; returns true if the queues drained. The clock is left at
    /// the last processed event (like the single-queue engine always
    /// did); events beyond `limit` stay pending.
    pub fn run_until_idle(&mut self, limit: TimeNs) -> bool {
        self.sync_topology();
        self.drain_until(limit);
        let max_now = self
            .core
            .shards
            .iter()
            .map(|s| s.now)
            .max()
            .unwrap_or(self.core.now);
        self.core.now = self.core.now.max(max_now);
        for s in &mut self.core.shards {
            s.now = self.core.now;
        }
        self.core.shards.iter().all(|s| s.queue.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{CountingSink, RecordingSink};
    use crate::packet::FlowId;
    use units::Rate;

    fn two_link_sim() -> (Simulator, LinkId, LinkId, AppId) {
        let mut sim = Simulator::new(7);
        let l0 = sim.add_link(LinkConfig::new(
            Rate::from_mbps(8.0),
            TimeNs::from_millis(1),
        ));
        let l1 = sim.add_link(LinkConfig::new(
            Rate::from_mbps(4.0),
            TimeNs::from_millis(2),
        ));
        let sink = sim.add_app(Box::new(RecordingSink::default()));
        (sim, l0, l1, sink)
    }

    #[test]
    fn single_packet_end_to_end_latency() {
        let (mut sim, l0, l1, sink) = two_link_sim();
        let route = sim.route(&[l0, l1], sink);
        // 1000 B: tx l0 = 1 ms, prop 1 ms, tx l1 = 2 ms, prop 2 ms => 6 ms
        sim.inject(Packet::new(1000, FlowId(1), 0, route), TimeNs::ZERO);
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        let rec = &sim.app::<RecordingSink>(sink).records;
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].recv_at, TimeNs::from_millis(6));
        assert_eq!(rec[0].sent_at, TimeNs::ZERO);
    }

    #[test]
    fn fifo_order_is_preserved_within_a_flow() {
        let (mut sim, l0, l1, sink) = two_link_sim();
        let route = sim.route(&[l0, l1], sink);
        for i in 0..50 {
            sim.inject(
                Packet::new(500, FlowId(1), i, route.clone()),
                TimeNs::from_micros(10 * i),
            );
        }
        assert!(sim.run_until_idle(TimeNs::from_secs(10)));
        let rec = &sim.app::<RecordingSink>(sink).records;
        assert_eq!(rec.len(), 50);
        for (i, r) in rec.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "reordering detected");
        }
        // Back-to-back arrivals at the second (slower) link are spaced by
        // its transmission time (4 Mb/s, 500 B => 1 ms).
        for w in rec.windows(2) {
            assert!(w[1].recv_at - w[0].recv_at >= TimeNs::from_millis(1));
        }
    }

    #[test]
    fn queueing_delay_builds_under_burst() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(Rate::from_mbps(8.0), TimeNs::ZERO));
        let sink = sim.add_app(Box::new(RecordingSink::default()));
        let route = sim.route(&[l], sink);
        // 10 packets of 1000 B injected simultaneously: tx time 1 ms each.
        for i in 0..10 {
            sim.inject(Packet::new(1000, FlowId(1), i, route.clone()), TimeNs::ZERO);
        }
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        let rec = &sim.app::<RecordingSink>(sink).records;
        for (i, r) in rec.iter().enumerate() {
            assert_eq!(r.recv_at, TimeNs::from_millis(i as u64 + 1));
        }
        let stats = &sim.link(l).stats;
        assert_eq!(stats.tx_packets, 10);
        assert_eq!(stats.max_queue_bytes, 9000);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulator::new(1);
        sim.run_until(TimeNs::from_secs(5));
        assert_eq!(sim.now(), TimeNs::from_secs(5));
    }

    #[test]
    fn empty_route_delivers_locally() {
        let mut sim = Simulator::new(1);
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let route = sim.route(&[], sink);
        sim.inject(
            Packet::new(100, FlowId(1), 0, route),
            TimeNs::from_millis(3),
        );
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        let s = sim.app::<CountingSink>(sink);
        assert_eq!(s.packets, 1);
        assert_eq!(s.last_arrival, TimeNs::from_millis(3));
    }

    #[test]
    fn removed_apps_drop_stale_events() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(
            Rate::from_mbps(8.0),
            TimeNs::from_millis(1),
        ));
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let route = sim.route(&[l], sink);
        // One packet in flight and one timer armed for the sink...
        sim.inject(Packet::new(1000, FlowId(1), 0, route), TimeNs::ZERO);
        sim.schedule_timer(sink, TimeNs::from_millis(5), 7);
        // ...then the sink goes away before either is delivered.
        let gone = sim.remove_app(sink);
        let any: &dyn Any = gone.as_ref();
        assert_eq!(any.downcast_ref::<CountingSink>().unwrap().packets, 0);
        // Both events drain without panicking and without effect.
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        // The slot stays retired: a fresh app gets a fresh id.
        let other = sim.add_app(Box::new(CountingSink::default()));
        assert_ne!(other, sink);
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_remove_panics() {
        let mut sim = Simulator::new(1);
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let _ = sim.remove_app(sink);
        let _ = sim.remove_app(sink);
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn injecting_into_the_past_panics() {
        let mut sim = Simulator::new(1);
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let route = sim.route(&[], sink);
        sim.run_until(TimeNs::from_secs(1));
        sim.inject(Packet::new(100, FlowId(1), 0, route), TimeNs::ZERO);
    }

    struct PingPong {
        peer_route: Option<Arc<RouteSpec>>,
        bounces_left: u32,
        pub received: u32,
    }

    impl App for PingPong {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            self.received += 1;
            if self.bounces_left > 0 {
                self.bounces_left -= 1;
                let route = self.peer_route.clone().unwrap();
                ctx.send(Packet::new(pkt.size, pkt.flow, pkt.seq + 1, route));
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            let route = self.peer_route.clone().unwrap();
            ctx.send(Packet::new(100, FlowId(9), 0, route));
        }
    }

    #[test]
    fn apps_can_send_re_entrantly() {
        let mut sim = Simulator::new(1);
        let l_ab = sim.add_link(LinkConfig::new(Rate::from_mbps(8.0), TimeNs::ZERO));
        let l_ba = sim.add_link(LinkConfig::new(Rate::from_mbps(8.0), TimeNs::ZERO));
        let a = sim.add_app(Box::new(PingPong {
            peer_route: None,
            bounces_left: 5,
            received: 0,
        }));
        let b = sim.add_app(Box::new(PingPong {
            peer_route: None,
            bounces_left: 5,
            received: 0,
        }));
        let to_b = sim.route(&[l_ab], b);
        let to_a = sim.route(&[l_ba], a);
        sim.app_mut::<PingPong>(a).peer_route = Some(to_b);
        sim.app_mut::<PingPong>(b).peer_route = Some(to_a);
        sim.schedule_timer(a, TimeNs::ZERO, 0);
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        let ra = sim.app::<PingPong>(a).received;
        let rb = sim.app::<PingPong>(b).received;
        // a sends 1; total bounces: b replies 5, a replies 5 => a gets 5, b gets 6.
        assert_eq!(rb, 6);
        assert_eq!(ra, 5);
    }

    // --- sharding ----------------------------------------------------

    /// Two disjoint one-link paths, each with a sink.
    fn disjoint_sim() -> (Simulator, [Arc<RouteSpec>; 2], [AppId; 2]) {
        let mut sim = Simulator::new(3);
        let l0 = sim.add_link(LinkConfig::new(
            Rate::from_mbps(8.0),
            TimeNs::from_millis(1),
        ));
        let l1 = sim.add_link(LinkConfig::new(
            Rate::from_mbps(8.0),
            TimeNs::from_millis(1),
        ));
        let s0 = sim.add_app(Box::new(RecordingSink::default()));
        let s1 = sim.add_app(Box::new(RecordingSink::default()));
        let r0 = sim.route(&[l0], s0);
        let r1 = sim.route(&[l1], s1);
        (sim, [r0, r1], [s0, s1])
    }

    #[test]
    fn disjoint_paths_shard_and_deliver_identically() {
        let run = |shard: bool| {
            let (mut sim, routes, sinks) = disjoint_sim();
            if shard {
                assert_eq!(sim.try_shard().unwrap(), 2);
                assert_eq!(sim.shards(), 2);
            }
            for i in 0..20u64 {
                sim.inject(
                    Packet::new(500, FlowId(0), i, routes[0].clone()),
                    TimeNs::from_micros(100 * i),
                );
                sim.inject(
                    Packet::new(700, FlowId(1), i, routes[1].clone()),
                    TimeNs::from_micros(130 * i),
                );
            }
            assert!(sim.run_until_idle(TimeNs::from_secs(1)));
            let recs = |id| {
                sim.app::<RecordingSink>(id)
                    .records
                    .iter()
                    .map(|r| (r.seq, r.sent_at, r.recv_at, r.size))
                    .collect::<Vec<_>>()
            };
            (recs(sinks[0]), recs(sinks[1]), sim.now())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn try_shard_refuses_single_component() {
        let (mut sim, _, sinks) = two_link_sim_with_shared_route();
        let err = sim.try_shard().unwrap_err();
        assert_eq!(err, ShardRefusal::SingleComponent);
        assert_eq!(sim.shards(), 1);
        // The refused engine still runs fine.
        sim.schedule_timer(sinks[0], TimeNs::from_millis(1), 0);
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
    }

    /// Two sinks whose routes cross the same link.
    fn two_link_sim_with_shared_route() -> (Simulator, [Arc<RouteSpec>; 2], [AppId; 2]) {
        let mut sim = Simulator::new(5);
        let shared = sim.add_link(LinkConfig::new(
            Rate::from_mbps(8.0),
            TimeNs::from_millis(1),
        ));
        let l0 = sim.add_link(LinkConfig::new(
            Rate::from_mbps(8.0),
            TimeNs::from_millis(1),
        ));
        let l1 = sim.add_link(LinkConfig::new(
            Rate::from_mbps(8.0),
            TimeNs::from_millis(1),
        ));
        let s0 = sim.add_app(Box::new(RecordingSink::default()));
        let s1 = sim.add_app(Box::new(RecordingSink::default()));
        let r0 = sim.route(&[l0, shared], s0);
        let r1 = sim.route(&[l1, shared], s1);
        (sim, [r0, r1], [s0, s1])
    }

    #[test]
    fn pending_events_survive_the_freeze() {
        let (mut sim, routes, sinks) = disjoint_sim();
        // Events queued before the freeze...
        for i in 0..5u64 {
            sim.inject(
                Packet::new(500, FlowId(0), i, routes[0].clone()),
                TimeNs::from_micros(100 * i),
            );
            sim.inject(
                Packet::new(500, FlowId(1), i, routes[1].clone()),
                TimeNs::from_micros(100 * i),
            );
        }
        assert_eq!(sim.try_shard().unwrap(), 2);
        // ...land on the right shards and deliver.
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        assert_eq!(sim.app::<RecordingSink>(sinks[0]).records.len(), 5);
        assert_eq!(sim.app::<RecordingSink>(sinks[1]).records.len(), 5);
    }

    #[test]
    fn cross_shard_route_collapses_deterministically() {
        let (mut sim, routes, sinks) = disjoint_sim();
        assert_eq!(sim.try_shard().unwrap(), 2);
        sim.inject(
            Packet::new(500, FlowId(0), 0, routes[0].clone()),
            TimeNs::ZERO,
        );
        // A new route that spans both components: the engine must fold
        // back to one queue and still deliver everything.
        let l0 = routes[0].links[0];
        let l1 = routes[1].links[0];
        let spanning = sim.route(&[l0, l1], sinks[1]);
        sim.inject(Packet::new(500, FlowId(7), 9, spanning), TimeNs::ZERO);
        assert_eq!(sim.shards(), 1, "engine collapsed to the single queue");
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        assert_eq!(sim.app::<RecordingSink>(sinks[0]).records.len(), 1);
        assert_eq!(sim.app::<RecordingSink>(sinks[1]).records.len(), 1);
    }

    #[test]
    fn post_freeze_app_on_existing_shard_keeps_sharding() {
        let (mut sim, routes, _) = disjoint_sim();
        assert_eq!(sim.try_shard().unwrap(), 2);
        // A fresh app routed within component 1 (the mid-run load-step /
        // session-install pattern).
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let route = sim.route(&[routes[1].links[0]], sink);
        sim.inject(Packet::new(400, FlowId(3), 0, route), sim.now());
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        assert_eq!(sim.shards(), 2, "same-shard growth must not collapse");
        assert_eq!(sim.app::<CountingSink>(sink).packets, 1);
    }

    #[test]
    fn unplaced_timer_collapses_instead_of_panicking() {
        let (mut sim, _, _) = disjoint_sim();
        assert_eq!(sim.try_shard().unwrap(), 2);
        // An app added after the freeze with no route at all.
        let orphan = sim.add_app(Box::new(CountingSink::default()));
        sim.schedule_timer(orphan, TimeNs::from_millis(1), 0);
        assert_eq!(sim.shards(), 1);
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
    }

    #[test]
    fn engine_stats_count_heap_and_front_ops() {
        let (mut sim, routes, _) = disjoint_sim();
        for i in 0..10u64 {
            sim.inject(
                Packet::new(500, FlowId(0), i, routes[0].clone()),
                TimeNs::from_micros(100 * i),
            );
        }
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        let s = sim.engine_stats();
        assert_eq!(s.shards, 1);
        assert!(s.events_processed >= 30, "3 events per packet");
        assert!(s.front_hits > 0, "front slot must see traffic");
        assert!(s.pool_live_max >= 1);
        // Conservation: everything pushed was popped (queues drained).
        assert_eq!(s.heap_pushes, s.heap_pops);
    }
}
