//! The simulation engine: event loop, link forwarding, app dispatch.

use crate::app::{App, AppId, Ctx};
use crate::event::{Event, EventKind, EventQueue};
use crate::link::{Arrival, Link, LinkConfig, LinkId};
use crate::packet::{Packet, RouteSpec};
use crate::rng::Prng;
use std::any::Any;
use std::sync::Arc;
use units::TimeNs;

/// Engine state shared with applications through [`Ctx`]: clock, event
/// queue, and links. Kept separate from the app table so apps can be
/// dispatched with `&mut SimCore` without aliasing themselves.
#[derive(Debug)]
pub struct SimCore {
    pub(crate) now: TimeNs,
    pub(crate) queue: EventQueue,
    pub(crate) links: Vec<Link>,
    next_pkt_id: u64,
    events_processed: u64,
}

impl SimCore {
    /// Inject a packet at `at` (≥ now): stamps id and `sent_at`, then
    /// schedules its arrival at the first link of its route (or direct
    /// delivery for an empty route).
    pub(crate) fn inject(&mut self, mut pkt: Packet, at: TimeNs) {
        assert!(at >= self.now, "cannot inject into the past");
        pkt.id = self.next_pkt_id;
        self.next_pkt_id += 1;
        pkt.sent_at = at;
        pkt.hop = 0;
        match pkt.next_link() {
            Some(link) => self.queue.push(at, EventKind::ArriveAtLink { link, pkt }),
            None => {
                let app = pkt.route.dst;
                self.queue.push(at, EventKind::Deliver { app, pkt });
            }
        }
    }

    pub(crate) fn schedule_timer(&mut self, app: AppId, at: TimeNs, token: u64) {
        assert!(at >= self.now, "cannot arm a timer in the past");
        self.queue.push(at, EventKind::Timer { app, token });
    }
}

/// The discrete-event simulator. See the crate docs for an overview.
pub struct Simulator {
    core: SimCore,
    apps: Vec<Option<Box<dyn App>>>,
    /// Apps retired with [`Simulator::remove_app`]: their slots are `None`
    /// and events still addressed to them are silently dropped.
    retired: Vec<bool>,
    master_rng: Prng,
    rng_streams_taken: u64,
}

impl Simulator {
    /// Create a simulator; `seed` roots all randomness (links, and any
    /// [`Prng`] handed out by [`Simulator::rng`]).
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            core: SimCore {
                now: TimeNs::ZERO,
                queue: EventQueue::default(),
                links: Vec::new(),
                next_pkt_id: 0,
                events_processed: 0,
            },
            apps: Vec::new(),
            retired: Vec::new(),
            master_rng: Prng::new(seed),
            rng_streams_taken: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> TimeNs {
        self.core.now
    }

    /// Total events processed so far (engine throughput metric).
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Derive a fresh deterministic RNG (for traffic sources etc.).
    pub fn rng(&mut self) -> Prng {
        self.rng_streams_taken += 1;
        self.master_rng.derive(0xABCD_0000 + self.rng_streams_taken)
    }

    /// Add a link; returns its id.
    pub fn add_link(&mut self, cfg: LinkConfig) -> LinkId {
        let id = LinkId(self.core.links.len() as u32);
        let rng = self.master_rng.derive(0x11_0000 + id.0 as u64);
        self.core.links.push(Link::new(cfg, rng));
        id
    }

    /// Access a link (stats, monitor, queue state).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.core.links[id.0 as usize]
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.core.links.len()
    }

    /// Add an application; returns its id.
    pub fn add_app(&mut self, app: Box<dyn App>) -> AppId {
        let id = AppId(self.apps.len() as u32);
        self.apps.push(Some(app));
        self.retired.push(false);
        id
    }

    /// Permanently retire an application, returning it for final
    /// inspection. Events still addressed to it — packets in flight, armed
    /// timers — are dropped on delivery, like traffic to a host that went
    /// away. Long-running experiments (the monitoring daemon installs a
    /// fresh session app per measurement) use this to keep the app table
    /// from accumulating finished sessions.
    ///
    /// Panics if the app is currently being dispatched or was already
    /// removed.
    pub fn remove_app(&mut self, id: AppId) -> Box<dyn App> {
        let app = self.apps[id.0 as usize]
            .take()
            .expect("app already removed or being dispatched");
        self.retired[id.0 as usize] = true;
        app
    }

    /// Downcast an application to its concrete type (panics on mismatch —
    /// that is always an experiment-code bug).
    pub fn app<T: App>(&self, id: AppId) -> &T {
        let app = self.apps[id.0 as usize]
            .as_ref()
            .expect("app is being dispatched or was removed");
        let any: &dyn Any = app.as_ref();
        any.downcast_ref::<T>().expect("app type mismatch")
    }

    /// Mutable variant of [`Simulator::app`].
    pub fn app_mut<T: App>(&mut self, id: AppId) -> &mut T {
        let app = self.apps[id.0 as usize]
            .as_mut()
            .expect("app is being dispatched or was removed");
        let any: &mut dyn Any = app.as_mut();
        any.downcast_mut::<T>().expect("app type mismatch")
    }

    /// Build a route over the given links ending at `dst`.
    pub fn route(&self, links: &[LinkId], dst: AppId) -> Arc<RouteSpec> {
        for l in links {
            assert!(
                (l.0 as usize) < self.core.links.len(),
                "route references unknown link {l:?}"
            );
        }
        Arc::new(RouteSpec {
            links: links.to_vec(),
            dst,
        })
    }

    /// Inject a packet from outside the simulation at an absolute time
    /// (≥ now). Used by probe transports to realize perfectly periodic
    /// streams.
    pub fn inject(&mut self, pkt: Packet, at: TimeNs) {
        self.core.inject(pkt, at);
    }

    /// Arm an application timer at an absolute time. Used to kick off apps.
    pub fn schedule_timer(&mut self, app: AppId, at: TimeNs, token: u64) {
        self.core.schedule_timer(app, at, token);
    }

    /// Process a single event. Returns false if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.core.now, "event queue went backwards");
        self.core.now = ev.time;
        self.core.events_processed += 1;
        self.dispatch(ev);
        true
    }

    fn dispatch(&mut self, ev: Event) {
        match ev.kind {
            EventKind::ArriveAtLink { link, pkt } => {
                let l = &mut self.core.links[link.0 as usize];
                if let Arrival::StartTx(done) = l.on_arrival(pkt, ev.time) {
                    self.core.queue.push(done, EventKind::TxDone { link });
                }
            }
            EventKind::TxDone { link } => {
                let l = &mut self.core.links[link.0 as usize];
                let prop = l.prop_delay();
                let (mut pkt, next_tx) = l.on_tx_done(ev.time);
                if let Some(done) = next_tx {
                    self.core.queue.push(done, EventKind::TxDone { link });
                }
                pkt.hop += 1;
                let arrive = ev.time + prop;
                match pkt.next_link() {
                    Some(next) => self
                        .core
                        .queue
                        .push(arrive, EventKind::ArriveAtLink { link: next, pkt }),
                    None => {
                        let app = pkt.route.dst;
                        self.core
                            .queue
                            .push(arrive, EventKind::Deliver { app, pkt });
                    }
                }
            }
            EventKind::Deliver { app, pkt } => {
                self.with_app(app, |a, ctx| a.on_packet(ctx, pkt));
            }
            EventKind::Timer { app, token } => {
                self.with_app(app, |a, ctx| a.on_timer(ctx, token));
            }
        }
    }

    fn with_app<F: FnOnce(&mut Box<dyn App>, &mut Ctx<'_>)>(&mut self, id: AppId, f: F) {
        if self.retired[id.0 as usize] {
            return; // stale event for a removed app: drop it
        }
        let slot = &mut self.apps[id.0 as usize];
        let mut app = slot.take().expect("re-entrant dispatch of the same app");
        let mut ctx = Ctx {
            core: &mut self.core,
            id,
        };
        f(&mut app, &mut ctx);
        self.apps[id.0 as usize] = Some(app);
    }

    /// Run until the clock reaches `t` (processing every event at ≤ t),
    /// then set the clock to exactly `t`.
    pub fn run_until(&mut self, t: TimeNs) {
        while let Some(next) = self.core.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        debug_assert!(self.core.now <= t);
        self.core.now = t;
    }

    /// Run until the event queue drains or the clock would pass `limit`;
    /// returns true if the queue drained.
    pub fn run_until_idle(&mut self, limit: TimeNs) -> bool {
        while let Some(next) = self.core.queue.peek_time() {
            if next > limit {
                return false;
            }
            self.step();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{CountingSink, RecordingSink};
    use crate::packet::FlowId;
    use units::Rate;

    fn two_link_sim() -> (Simulator, LinkId, LinkId, AppId) {
        let mut sim = Simulator::new(7);
        let l0 = sim.add_link(LinkConfig::new(
            Rate::from_mbps(8.0),
            TimeNs::from_millis(1),
        ));
        let l1 = sim.add_link(LinkConfig::new(
            Rate::from_mbps(4.0),
            TimeNs::from_millis(2),
        ));
        let sink = sim.add_app(Box::new(RecordingSink::default()));
        (sim, l0, l1, sink)
    }

    #[test]
    fn single_packet_end_to_end_latency() {
        let (mut sim, l0, l1, sink) = two_link_sim();
        let route = sim.route(&[l0, l1], sink);
        // 1000 B: tx l0 = 1 ms, prop 1 ms, tx l1 = 2 ms, prop 2 ms => 6 ms
        sim.inject(Packet::new(1000, FlowId(1), 0, route), TimeNs::ZERO);
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        let rec = &sim.app::<RecordingSink>(sink).records;
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].recv_at, TimeNs::from_millis(6));
        assert_eq!(rec[0].sent_at, TimeNs::ZERO);
    }

    #[test]
    fn fifo_order_is_preserved_within_a_flow() {
        let (mut sim, l0, l1, sink) = two_link_sim();
        let route = sim.route(&[l0, l1], sink);
        for i in 0..50 {
            sim.inject(
                Packet::new(500, FlowId(1), i, route.clone()),
                TimeNs::from_micros(10 * i),
            );
        }
        assert!(sim.run_until_idle(TimeNs::from_secs(10)));
        let rec = &sim.app::<RecordingSink>(sink).records;
        assert_eq!(rec.len(), 50);
        for (i, r) in rec.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "reordering detected");
        }
        // Back-to-back arrivals at the second (slower) link are spaced by
        // its transmission time (4 Mb/s, 500 B => 1 ms).
        for w in rec.windows(2) {
            assert!(w[1].recv_at - w[0].recv_at >= TimeNs::from_millis(1));
        }
    }

    #[test]
    fn queueing_delay_builds_under_burst() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(Rate::from_mbps(8.0), TimeNs::ZERO));
        let sink = sim.add_app(Box::new(RecordingSink::default()));
        let route = sim.route(&[l], sink);
        // 10 packets of 1000 B injected simultaneously: tx time 1 ms each.
        for i in 0..10 {
            sim.inject(Packet::new(1000, FlowId(1), i, route.clone()), TimeNs::ZERO);
        }
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        let rec = &sim.app::<RecordingSink>(sink).records;
        for (i, r) in rec.iter().enumerate() {
            assert_eq!(r.recv_at, TimeNs::from_millis(i as u64 + 1));
        }
        let stats = &sim.link(l).stats;
        assert_eq!(stats.tx_packets, 10);
        assert_eq!(stats.max_queue_bytes, 9000);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulator::new(1);
        sim.run_until(TimeNs::from_secs(5));
        assert_eq!(sim.now(), TimeNs::from_secs(5));
    }

    #[test]
    fn empty_route_delivers_locally() {
        let mut sim = Simulator::new(1);
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let route = sim.route(&[], sink);
        sim.inject(
            Packet::new(100, FlowId(1), 0, route),
            TimeNs::from_millis(3),
        );
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        let s = sim.app::<CountingSink>(sink);
        assert_eq!(s.packets, 1);
        assert_eq!(s.last_arrival, TimeNs::from_millis(3));
    }

    #[test]
    fn removed_apps_drop_stale_events() {
        let mut sim = Simulator::new(1);
        let l = sim.add_link(LinkConfig::new(
            Rate::from_mbps(8.0),
            TimeNs::from_millis(1),
        ));
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let route = sim.route(&[l], sink);
        // One packet in flight and one timer armed for the sink...
        sim.inject(Packet::new(1000, FlowId(1), 0, route), TimeNs::ZERO);
        sim.schedule_timer(sink, TimeNs::from_millis(5), 7);
        // ...then the sink goes away before either is delivered.
        let gone = sim.remove_app(sink);
        let any: &dyn Any = gone.as_ref();
        assert_eq!(any.downcast_ref::<CountingSink>().unwrap().packets, 0);
        // Both events drain without panicking and without effect.
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        // The slot stays retired: a fresh app gets a fresh id.
        let other = sim.add_app(Box::new(CountingSink::default()));
        assert_ne!(other, sink);
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_remove_panics() {
        let mut sim = Simulator::new(1);
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let _ = sim.remove_app(sink);
        let _ = sim.remove_app(sink);
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn injecting_into_the_past_panics() {
        let mut sim = Simulator::new(1);
        let sink = sim.add_app(Box::new(CountingSink::default()));
        let route = sim.route(&[], sink);
        sim.run_until(TimeNs::from_secs(1));
        sim.inject(Packet::new(100, FlowId(1), 0, route), TimeNs::ZERO);
    }

    struct PingPong {
        peer_route: Option<Arc<RouteSpec>>,
        bounces_left: u32,
        pub received: u32,
    }

    impl App for PingPong {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
            self.received += 1;
            if self.bounces_left > 0 {
                self.bounces_left -= 1;
                let route = self.peer_route.clone().unwrap();
                ctx.send(Packet::new(pkt.size, pkt.flow, pkt.seq + 1, route));
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            let route = self.peer_route.clone().unwrap();
            ctx.send(Packet::new(100, FlowId(9), 0, route));
        }
    }

    #[test]
    fn apps_can_send_re_entrantly() {
        let mut sim = Simulator::new(1);
        let l_ab = sim.add_link(LinkConfig::new(Rate::from_mbps(8.0), TimeNs::ZERO));
        let l_ba = sim.add_link(LinkConfig::new(Rate::from_mbps(8.0), TimeNs::ZERO));
        let a = sim.add_app(Box::new(PingPong {
            peer_route: None,
            bounces_left: 5,
            received: 0,
        }));
        let b = sim.add_app(Box::new(PingPong {
            peer_route: None,
            bounces_left: 5,
            received: 0,
        }));
        let to_b = sim.route(&[l_ab], b);
        let to_a = sim.route(&[l_ba], a);
        sim.app_mut::<PingPong>(a).peer_route = Some(to_b);
        sim.app_mut::<PingPong>(b).peer_route = Some(to_a);
        sim.schedule_timer(a, TimeNs::ZERO, 0);
        assert!(sim.run_until_idle(TimeNs::from_secs(1)));
        let ra = sim.app::<PingPong>(a).received;
        let rb = sim.app::<PingPong>(b).received;
        // a sends 1; total bounces: b replies 5, a replies 5 => a gets 5, b gets 6.
        assert_eq!(rb, 6);
        assert_eq!(ra, 5);
    }
}
