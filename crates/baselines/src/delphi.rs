//! A Delphi-style single-queue estimator (Ribeiro et al. 2000, §II).
//!
//! Delphi models the whole path as **one** queue: the spacing expansion of
//! a packet pair estimates the cross traffic that entered that queue
//! between the two probes, provided the queue never empties between them.
//! If the input gap is `g_in` and the output gap `g_out` at a link of
//! capacity `C`, the bytes serviced in `g_out` are `C·g_out`, of which `L`
//! is the second probe itself — so the cross traffic arrived at rate
//! `(C·g_out − L·8) / g_in`, and the avail-bw estimate is `C` minus that.
//!
//! The paper's critique (§II) is built in: the model breaks when the tight
//! and narrow links differ, because it attributes *all* queueing to the
//! single assumed queue. The integration tests demonstrate both the
//! working case and the failure case.

use crate::topp::delivered_gap_ns;
use slops::{stream_params, ProbeTransport, SlopsConfig, TransportError};
use units::{Rate, TimeNs};

/// Delphi parameters.
#[derive(Clone, Debug)]
pub struct DelphiConfig {
    /// Assumed capacity of the single queue (Delphi requires knowing C).
    pub capacity: Rate,
    /// Probing rate of the pair stream — must be high enough to keep the
    /// queue busy between the probes of each pair (we use 3/4 of C).
    pub probe_rate_fraction: f64,
    /// Number of pairs to average.
    pub pairs: u32,
    /// Idle time between pair streams.
    pub spacing: TimeNs,
}

impl DelphiConfig {
    /// Default configuration for a known capacity.
    pub fn for_capacity(capacity: Rate) -> DelphiConfig {
        DelphiConfig {
            capacity,
            probe_rate_fraction: 0.75,
            pairs: 24,
            spacing: TimeNs::from_millis(100),
        }
    }
}

/// The result of a Delphi run.
#[derive(Clone, Debug)]
pub struct DelphiEstimate {
    /// Estimated avail-bw under the single-queue model.
    pub avail_bw: Rate,
    /// Estimated cross-traffic rate at the assumed queue.
    pub cross_rate: Rate,
    /// Pairs that produced a usable sample.
    pub usable_pairs: u32,
}

/// Run a Delphi-style measurement: short two-packet streams at a rate high
/// enough to keep the (assumed single) queue backlogged within each pair.
pub fn delphi<T: ProbeTransport + ?Sized>(
    transport: &mut T,
    cfg: &DelphiConfig,
) -> Result<DelphiEstimate, TransportError> {
    assert!(cfg.pairs >= 1 && (0.0..=1.0).contains(&cfg.probe_rate_fraction));
    let mut scfg = SlopsConfig::default();
    scfg.stream_len = 2;
    // stream_params requires >= 9 packets for trend analysis; we bypass the
    // session and request raw two-packet streams ourselves.
    let rate = cfg.capacity * cfg.probe_rate_fraction;
    let proto = stream_params(rate, 0, &scfg);
    let mut cross_samples: Vec<f64> = Vec::new();
    for i in 0..cfg.pairs {
        let mut req = proto;
        req.stream_id = i;
        req.count = 2;
        let rec = transport.send_stream(&req)?;
        if let Some(g_out_ns) = delivered_gap_ns(&rec) {
            let g_in = req.period.secs_f64();
            let g_out = g_out_ns as f64 / 1e9;
            let l_bits = req.packet_size as f64 * 8.0;
            // Bytes·8 serviced during g_out minus the probe itself, per
            // unit of *input* gap: the cross-traffic arrival rate.
            let cross = (cfg.capacity.bps() * g_out - l_bits) / g_in;
            if cross.is_finite() {
                cross_samples.push(cross.clamp(0.0, cfg.capacity.bps()));
            }
        }
        transport.idle(cfg.spacing);
    }
    if cross_samples.is_empty() {
        return Err(TransportError::Io("no usable Delphi pairs".into()));
    }
    let cross = units::mean(&cross_samples);
    Ok(DelphiEstimate {
        avail_bw: cfg.capacity - Rate::from_bps(cross),
        cross_rate: Rate::from_bps(cross),
        usable_pairs: cross_samples.len() as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slops::testutil::OracleTransport;

    #[test]
    fn single_queue_path_is_estimated_well() {
        // The oracle IS a single-queue fluid path: Delphi's model holds.
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 11);
        t.spike_prob = 0.0;
        t.clock_resolution_ns = 1; // pair gaps need fine timestamps
        let cfg = DelphiConfig::for_capacity(Rate::from_mbps(80.0));
        let est = delphi(&mut t, &cfg).unwrap();
        assert!(
            (est.avail_bw.mbps() - 40.0).abs() < 6.0,
            "avail {} (cross {})",
            est.avail_bw,
            est.cross_rate
        );
        assert_eq!(est.usable_pairs, 24);
    }

    #[test]
    fn wrong_capacity_assumption_breaks_the_estimate() {
        // Feed Delphi the wrong capacity — the single-queue model has no
        // way to notice, and the estimate degrades accordingly.
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 12);
        t.spike_prob = 0.0;
        t.clock_resolution_ns = 1;
        let cfg = DelphiConfig::for_capacity(Rate::from_mbps(30.0)); // C is 80
        let est = delphi(&mut t, &cfg).unwrap();
        assert!(
            (est.avail_bw.mbps() - 40.0).abs() > 5.0,
            "should be badly off, got {}",
            est.avail_bw
        );
    }
}
