//! TOPP (train of packet pairs) avail-bw and capacity estimation.
//!
//! TOPP offers short probe streams at a sweep of rates `R_in` and measures
//! the delivered rate `R_out` at the receiver. Under the fluid model
//! (see the `fluid` crate), at a single congested link with capacity `C`
//! and avail-bw `A`:
//!
//! ```text
//! R_in ≤ A:  R_in / R_out = 1
//! R_in > A:  R_in / R_out = (R_in + C − A) / C   — linear in R_in
//! ```
//!
//! so the ratio curve bends at `A`, the slope of the upper segment is
//! `1/C`, and its intercept is `(C − A)/C`. We sweep rates, find the bend,
//! and least-squares fit the upper segment.

use slops::{stream_params, ProbeTransport, SlopsConfig, StreamRecord, TransportError};
use units::{Rate, TimeNs};

/// TOPP parameters.
#[derive(Clone, Debug)]
pub struct ToppConfig {
    /// Lowest offered rate.
    pub min_rate: Rate,
    /// Highest offered rate (should exceed the expected avail-bw; rates
    /// near or above the capacity are fine).
    pub max_rate: Rate,
    /// Number of rate steps in the sweep.
    pub steps: u32,
    /// Packets per probe stream at each rate.
    pub stream_len: u32,
    /// Idle time between streams.
    pub spacing: TimeNs,
    /// A rate is considered "bent" once R_in/R_out exceeds this.
    pub bend_threshold: f64,
}

impl Default for ToppConfig {
    fn default() -> Self {
        ToppConfig {
            min_rate: Rate::from_mbps(1.0),
            max_rate: Rate::from_mbps(100.0),
            steps: 25,
            stream_len: 50,
            spacing: TimeNs::from_millis(200),
            bend_threshold: 1.02,
        }
    }
}

/// The result of a TOPP sweep.
#[derive(Clone, Debug)]
pub struct ToppEstimate {
    /// Estimated avail-bw of the tight link.
    pub avail_bw: Rate,
    /// Estimated capacity of the tight link.
    pub capacity: Rate,
    /// The sweep samples `(offered, delivered)`.
    pub sweep: Vec<(Rate, Rate)>,
}

/// Receive-time span between the first and last received packets of a
/// stream, in nanoseconds. Receive instant = send_offset + OWD; the
/// constant clock offset cancels in the difference. `None` when fewer
/// than two packets arrived or the span is non-positive.
pub(crate) fn delivered_gap_ns(rec: &StreamRecord) -> Option<i64> {
    if rec.samples.len() < 2 {
        return None;
    }
    let first = rec.samples.first().unwrap();
    let last = rec.samples.last().unwrap();
    let t0 = first.send_offset.as_nanos() as i64 + first.owd_ns;
    let t1 = last.send_offset.as_nanos() as i64 + last.owd_ns;
    (t1 > t0).then_some(t1 - t0)
}

/// Delivered rate of a stream record: `(n−1)·L·8 / receive span`.
fn delivered_rate(rec: &StreamRecord, packet_size: u32) -> Option<Rate> {
    let span = delivered_gap_ns(rec)?;
    let bits = (rec.samples.len() as u64 - 1) * packet_size as u64 * 8;
    Some(Rate::from_bps(
        bits as f64 / (TimeNs::from_nanos(span as u64)).secs_f64(),
    ))
}

/// Run a TOPP sweep over `transport`.
pub fn topp<T: ProbeTransport + ?Sized>(
    transport: &mut T,
    cfg: &ToppConfig,
) -> Result<ToppEstimate, TransportError> {
    assert!(cfg.steps >= 4 && cfg.max_rate.bps() > cfg.min_rate.bps());
    let mut scfg = SlopsConfig::default();
    scfg.stream_len = cfg.stream_len;
    let mut sweep: Vec<(Rate, Rate)> = Vec::with_capacity(cfg.steps as usize);
    for i in 0..cfg.steps {
        let frac = i as f64 / (cfg.steps - 1) as f64;
        let r_in =
            Rate::from_bps(cfg.min_rate.bps() + frac * (cfg.max_rate.bps() - cfg.min_rate.bps()));
        let req = stream_params(r_in, i, &scfg);
        let rec = transport.send_stream(&req)?;
        if let Some(r_out) = delivered_rate(&rec, req.packet_size) {
            sweep.push((req.actual_rate(), r_out));
        }
        transport.idle(cfg.spacing);
    }
    if sweep.len() < 4 {
        return Err(TransportError::Io("too few usable TOPP samples".into()));
    }
    // Find the bend: first offered rate whose ratio exceeds the threshold
    // and stays above it for the rest of the sweep (noise robustness).
    let ratios: Vec<f64> = sweep.iter().map(|(i, o)| i.bps() / o.bps()).collect();
    let bend = (0..ratios.len())
        .find(|&k| ratios[k..].iter().all(|&r| r > cfg.bend_threshold))
        .unwrap_or(ratios.len());
    let upper = &sweep[bend..];
    if upper.len() < 2 {
        // Never bent: the path was never congested in the sweep range; the
        // avail-bw is at least the maximum offered rate.
        let max_offered = sweep.last().unwrap().0;
        return Ok(ToppEstimate {
            avail_bw: max_offered,
            capacity: max_offered,
            sweep,
        });
    }
    // Least-squares fit ratio = a + b·R_in on the upper segment.
    let n = upper.len() as f64;
    let xs: Vec<f64> = upper.iter().map(|(i, _)| i.bps()).collect();
    let ys: Vec<f64> = upper.iter().map(|(i, o)| i.bps() / o.bps()).collect();
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return Err(TransportError::Io("degenerate TOPP fit".into()));
    }
    let b = (n * sxy - sx * sy) / denom; // slope = 1/C
    let a = (sy - b * sx) / n; // intercept = (C − A)/C
    if b <= 0.0 {
        return Err(TransportError::Io("non-positive TOPP slope".into()));
    }
    let capacity = 1.0 / b;
    let avail = capacity * (1.0 - a);
    Ok(ToppEstimate {
        avail_bw: Rate::from_bps(avail.clamp(0.0, capacity.max(0.0))),
        capacity: Rate::from_bps(capacity.max(0.0)),
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slops::testutil::OracleTransport;

    #[test]
    fn recovers_avail_bw_and_capacity_on_oracle() {
        // Oracle path: A = 40 Mb/s, C = 80 Mb/s, fluid OWD ramps.
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 9);
        t.spike_prob = 0.0; // noise-free fluid path
        let est = topp(&mut t, &ToppConfig::default()).unwrap();
        assert!(
            (est.avail_bw.mbps() - 40.0).abs() < 4.0,
            "avail {}",
            est.avail_bw
        );
        assert!(
            (est.capacity.mbps() - 80.0).abs() < 8.0,
            "capacity {}",
            est.capacity
        );
    }

    #[test]
    fn uncongested_sweep_reports_floor_at_max_rate() {
        let mut t = OracleTransport::new(Rate::from_mbps(500.0), 10);
        t.spike_prob = 0.0;
        let cfg = ToppConfig {
            max_rate: Rate::from_mbps(50.0), // well below A
            ..ToppConfig::default()
        };
        let est = topp(&mut t, &cfg).unwrap();
        assert!(est.avail_bw.mbps() >= 49.0);
    }

    #[test]
    fn delivered_rate_uses_receive_span() {
        use slops::PacketSample;
        let rec = StreamRecord {
            sent: 3,
            samples: vec![
                PacketSample {
                    idx: 0,
                    send_offset: TimeNs::ZERO,
                    owd_ns: 1000,
                },
                PacketSample {
                    idx: 1,
                    send_offset: TimeNs::from_micros(100),
                    owd_ns: 1000,
                },
                PacketSample {
                    idx: 2,
                    send_offset: TimeNs::from_micros(200),
                    owd_ns: 1000,
                },
            ],
        };
        // 2 * 500B * 8 / 200 us = 40 Mb/s
        let r = delivered_rate(&rec, 500).unwrap();
        assert!((r.mbps() - 40.0).abs() < 1e-9);
        let empty = StreamRecord {
            sent: 3,
            samples: vec![],
        };
        assert!(delivered_rate(&empty, 500).is_none());
    }
}
