//! cprobe-style packet-train dispersion (measures the ADR, not avail-bw).

use slops::{ProbeTransport, TransportError};
use units::{Rate, TimeNs};

/// cprobe parameters.
#[derive(Clone, Copy, Debug)]
pub struct CprobeConfig {
    /// Number of trains to send (cprobe used 4–10; more smooths the ADR).
    pub trains: u32,
    /// Packets per train.
    pub train_len: u32,
    /// Packet size in bytes.
    pub packet_size: u32,
    /// Idle time between trains.
    pub spacing: TimeNs,
}

impl Default for CprobeConfig {
    fn default() -> Self {
        CprobeConfig {
            trains: 8,
            train_len: 48,
            packet_size: 1500,
            spacing: TimeNs::from_millis(500),
        }
    }
}

/// The result of a cprobe run.
#[derive(Clone, Debug)]
pub struct CprobeEstimate {
    /// The "available bandwidth" cprobe reports — really the average
    /// dispersion rate (ADR) of its trains.
    pub reported: Rate,
    /// Per-train dispersion rates (for variability inspection).
    pub per_train: Vec<Rate>,
}

/// Run a cprobe measurement: send trains, average their dispersion rates
/// after dropping the fastest and slowest train (cprobe's own trimming).
pub fn cprobe<T: ProbeTransport + ?Sized>(
    transport: &mut T,
    cfg: &CprobeConfig,
) -> Result<CprobeEstimate, TransportError> {
    assert!(cfg.trains >= 1 && cfg.train_len >= 2);
    let mut rates: Vec<Rate> = Vec::with_capacity(cfg.trains as usize);
    for _ in 0..cfg.trains {
        let rec = transport.send_train(cfg.train_len, cfg.packet_size)?;
        if let Some(r) = rec.dispersion_rate() {
            rates.push(r);
        }
        transport.idle(cfg.spacing);
    }
    if rates.is_empty() {
        return Err(TransportError::Io("no train produced a dispersion".into()));
    }
    let mut sorted = rates.clone();
    sorted.sort_by(|a, b| a.bps().partial_cmp(&b.bps()).unwrap());
    let trimmed: &[Rate] = if sorted.len() > 2 {
        &sorted[1..sorted.len() - 1]
    } else {
        &sorted
    };
    let avg = trimmed.iter().map(|r| r.bps()).sum::<f64>() / trimmed.len() as f64;
    Ok(CprobeEstimate {
        reported: Rate::from_bps(avg),
        per_train: rates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slops::testutil::OracleTransport;

    #[test]
    fn reports_adr_not_avail_bw() {
        // Oracle: A = 40, C = 80 => ADR = 60. cprobe "avail-bw" is ~60.
        let mut t = OracleTransport::new(Rate::from_mbps(40.0), 3);
        let est = cprobe(&mut t, &CprobeConfig::default()).unwrap();
        assert!(
            (est.reported.mbps() - 60.0).abs() < 1.0,
            "reported {}",
            est.reported
        );
        assert!(est.reported.mbps() > 40.0, "cprobe should overestimate A");
        assert_eq!(est.per_train.len(), 8);
    }

    #[test]
    fn single_train_works() {
        let mut t = OracleTransport::new(Rate::from_mbps(10.0), 4);
        let cfg = CprobeConfig {
            trains: 1,
            ..CprobeConfig::default()
        };
        let est = cprobe(&mut t, &cfg).unwrap();
        assert!(est.reported.mbps() > 10.0);
    }
}
