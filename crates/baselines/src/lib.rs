//! # baselines — the estimators the paper compares against
//!
//! Two pre-SLoPS approaches, both discussed in §II of the paper:
//!
//! * [`mod@cprobe`] — Carter & Crovella's long-packet-train dispersion. The
//!   underlying assumption (train dispersion ∝ 1/avail-bw) is wrong: what
//!   it actually measures is the **asymptotic dispersion rate** (ADR),
//!   which sits between the avail-bw and the capacity (Dovrolis et al.,
//!   INFOCOM 2001). The integration tests demonstrate exactly that gap on
//!   simulated paths.
//! * [`mod@topp`] — Melander et al.'s train-of-packet-pairs method: offered
//!   rates are swept, and the ratio of offered to delivered rate bends at
//!   the avail-bw with slope 1/C — so TOPP recovers both the avail-bw and
//!   the tight link's capacity under the fluid model.
//! * [`mod@delphi`] — Ribeiro et al.'s single-queue pair-spacing estimator;
//!   works when the path really is one queue of known capacity, degrades
//!   exactly as §II predicts when it is not.
//!
//! Both run over the same [`slops::ProbeTransport`] abstraction as
//! pathload, so any path (simulated, synthetic, or real sockets) can be
//! measured by all three tools for comparison benches.

#![forbid(unsafe_code)]

pub mod cprobe;
pub mod delphi;
pub mod topp;

pub use cprobe::{cprobe, CprobeConfig, CprobeEstimate};
pub use delphi::{delphi, DelphiConfig, DelphiEstimate};
pub use topp::{topp, ToppConfig, ToppEstimate};
