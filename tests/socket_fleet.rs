//! The socket-backed monitoring fleet, end to end over loopback: the
//! `monitord` binary's driver ([`run_socket_fleet`]) multiplexing several
//! real UDP/TCP paths through the sans-IO scheduler, with the JSONL
//! records it would emit validated line by line.
//!
//! Every fleet here shares a **single** receiver address: the
//! multi-session receiver demuxes all paths' sessions on one control port
//! and one UDP socket, which is the intended co-located deployment.
//!
//! Loopback has no FIFO bottleneck, so the estimates themselves are not
//! meaningful — what these tests pin is the deployable stack: long-lived
//! per-path connections to one shared receiver, shared-epoch clocks,
//! staggered starts, streamed records that parse, and per-path series
//! that settle into a sane range.

use availbw::monitord::export::{sample_line, summary_line};
use availbw::monitord::{
    run_socket_fleet, FleetEvent, ScheduleConfig, SeriesConfig, SocketPathSpec,
};
use availbw::pathload_net::Receiver;
use availbw::slops::SlopsConfig;
use availbw::units::{Rate, TimeNs};
use std::thread;

mod common;
use common::{field, parse_flat_json};

/// Gentle probing so a loopback measurement lasts about a second.
fn gentle_cfg() -> SlopsConfig {
    let mut cfg = SlopsConfig::default();
    cfg.stream_len = 30;
    cfg.fleet_len = 4;
    cfg.min_period = TimeNs::from_millis(1);
    cfg.resolution = Rate::from_mbps(8.0);
    cfg.grey_resolution = Rate::from_mbps(16.0);
    cfg.max_fleets = 6;
    cfg
}

const RATE_CAP_MBPS: f64 = 40.0;

/// Three loopback paths, all naming ONE shared receiver address, through
/// the binary's socket fleet driver: every streamed record parses as
/// JSONL, every path converges to a sane series with no errors, and the
/// starts are staggered on one shared timeline.
#[test]
fn loopback_fleet_emits_valid_jsonl_and_converges() {
    const N: usize = 3;
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(N));
    let specs: Vec<SocketPathSpec> = (0..N)
        .map(|i| SocketPathSpec {
            label: format!("lo{i}"),
            ctrl_addr: addr,
            cfg: gentle_cfg(),
            rate_cap: Some(Rate::from_mbps(RATE_CAP_MBPS)),
        })
        .collect();
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(2),
        jitter: TimeNs::from_millis(200),
        max_concurrent: 1, // loopback paths share the host CPU
        seed: 42,
    };

    // Collect the JSONL lines exactly as the binary would emit them.
    let mut lines: Vec<String> = Vec::new();
    let series = run_socket_fleet(
        specs,
        &sched,
        &SeriesConfig::default(),
        TimeNs::from_secs(8),
        2,
        |ev| match ev {
            FleetEvent::Sample {
                path,
                label,
                sample,
            } => lines.push(sample_line(path, label, &sample)),
            FleetEvent::Failed { path, error, .. } => {
                panic!("path {path} failed on loopback: {error}")
            }
            FleetEvent::Change { .. } => {} // possible, not asserted
        },
    )
    .unwrap();
    for (p, s) in series.iter().enumerate() {
        lines.push(summary_line(p, s));
    }

    // Every line parses as a flat JSON record with the right shape.
    let mut samples_seen = [0usize; N];
    for line in &lines {
        let rec = parse_flat_json(line).unwrap_or_else(|| panic!("bad JSONL: {line}"));
        match field(&rec, "type") {
            Some("sample") => {
                let p: usize = field(&rec, "path").unwrap().parse().unwrap();
                assert!(p < N, "{line}");
                assert_eq!(field(&rec, "label").unwrap(), format!("lo{p}"));
                let low: f64 = field(&rec, "low_bps").unwrap().parse().unwrap();
                let high: f64 = field(&rec, "high_bps").unwrap().parse().unwrap();
                assert!(0.0 <= low && low <= high, "{line}");
                assert!(
                    high <= (RATE_CAP_MBPS + 8.0) * 1e6,
                    "estimate above the pacing cap: {line}"
                );
                let dur: f64 = field(&rec, "duration_ns").unwrap().parse().unwrap();
                assert!(dur > 0.0, "{line}");
                samples_seen[p] += 1;
            }
            Some("summary") => {
                assert_eq!(field(&rec, "errors").unwrap(), "0", "{line}");
            }
            Some("change") => {}
            other => panic!("unexpected record type {other:?}: {line}"),
        }
    }

    // Per-path series: at least 2 samples each, streamed == stored.
    assert_eq!(series.len(), N);
    let mut first_starts = Vec::new();
    for (p, s) in series.iter().enumerate() {
        assert!(
            s.len() >= 2,
            "path {p}: only {} samples before the horizon",
            s.len()
        );
        assert_eq!(s.len(), samples_seen[p], "path {p}: streamed != stored");
        assert_eq!(s.errors(), 0);
        first_starts.push(s.samples().next().unwrap().started);
    }
    // Staggered starts on one shared timeline: all distinct.
    first_starts.sort();
    first_starts.dedup();
    assert_eq!(first_starts.len(), N, "starts were not staggered");

    server.join().unwrap().unwrap();
}

/// The concurrency cap holds over real sockets even when both paths
/// share one receiver: with `max_concurrent 1` no two measurements
/// overlap in wall-clock time, even across paths.
#[test]
fn concurrency_cap_holds_on_the_wall_clock() {
    const N: usize = 2;
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(N));
    let specs: Vec<SocketPathSpec> = (0..N)
        .map(|i| SocketPathSpec {
            label: format!("p{i}"),
            ctrl_addr: addr,
            cfg: gentle_cfg(),
            rate_cap: Some(Rate::from_mbps(RATE_CAP_MBPS)),
        })
        .collect();
    let sched = ScheduleConfig {
        period: TimeNs::from_millis(500), // force back-to-back pressure
        jitter: TimeNs::ZERO,
        max_concurrent: 1,
        seed: 3,
    };
    let series = run_socket_fleet(
        specs,
        &sched,
        &SeriesConfig::default(),
        TimeNs::from_secs(5),
        2,
        |_| {},
    )
    .unwrap();
    let mut intervals: Vec<(TimeNs, TimeNs)> = series
        .iter()
        .flat_map(|s| s.samples().map(|r| (r.started, r.end())))
        .collect();
    intervals.sort();
    assert!(
        intervals.len() >= 3,
        "too few measurements to check the cap"
    );
    for w in intervals.windows(2) {
        assert!(
            w[1].0 >= w[0].1,
            "measurements overlapped under cap 1: {w:?}"
        );
    }
    server.join().unwrap().unwrap();
}
