//! Driver equivalence: every way of driving the sans-IO `SessionMachine`
//! must produce the same measurement.
//!
//! * The blocking `Session::run` driver vs a hand-stepped machine on
//!   `OracleTransport` — byte-identical `Estimate`s across ≥ 20 seeds and
//!   across noise/loss/grey/ceiling conditions (property test).
//! * The blocking `SimTransport` shim vs the event-driven in-sim
//!   `SessionApp` driver on the paper's Fig. 4 topology — identical
//!   estimates for the same simulator seed.

use availbw::simprobe::scenarios::{PaperPath, PaperPathConfig};
use availbw::simprobe::{install_session, run_session, SessionApp};
use availbw::slops::machine::{Command, Event, SessionMachine};
use availbw::slops::testutil::OracleTransport;
use availbw::slops::{Estimate, ProbeTransport, Session, SlopsConfig};
use availbw::telemetry::{TraceEvent, VecSink};
use availbw::units::{Rate, TimeNs};
use proptest::prelude::*;
use std::sync::Arc;

/// Drive a `SessionMachine` by hand over a transport, exactly as the
/// blocking driver does — but stepping explicitly, and checking the
/// poll/event alternation contract at every step.
fn hand_step<T: ProbeTransport>(cfg: SlopsConfig, transport: &mut T) -> Estimate {
    let start = transport.elapsed();
    let rtt = transport.rtt();
    let mut m = SessionMachine::new(cfg, rtt, transport.max_rate()).expect("valid config");
    let mut steps = 0;
    loop {
        steps += 1;
        assert!(steps < 1_000_000, "machine does not terminate");
        let cmd = m.poll().expect("no command pending at loop head");
        let event = match cmd {
            Command::SendTrain { len, size } => {
                assert!(m.poll().is_none(), "machine must pend while train flies");
                Event::TrainDone(transport.send_train(len, size).unwrap())
            }
            Command::SendStream(req) => {
                assert!(m.poll().is_none(), "machine must pend while stream flies");
                Event::StreamDone(transport.send_stream(&req).unwrap())
            }
            Command::Idle(dur) => {
                assert!(m.poll().is_none(), "machine must pend while idling");
                transport.idle(dur);
                Event::Tick(transport.elapsed())
            }
            Command::Finish(est) => {
                let mut est = *est;
                est.elapsed = transport.elapsed().saturating_sub(start);
                return est;
            }
        };
        m.on_event(event)
            .expect("event answers the machine's own command");
    }
}

/// Byte-identical estimates across 24 plain seeds on the default oracle.
#[test]
fn blocking_driver_equals_hand_stepped_machine_across_seeds() {
    for seed in 0..24u64 {
        let a = Rate::from_mbps(5.0 + 4.0 * seed as f64);
        let blocking = {
            let mut t = OracleTransport::new(a, seed);
            Session::new(SlopsConfig::default()).run(&mut t).unwrap()
        };
        let stepped = {
            let mut t = OracleTransport::new(a, seed);
            hand_step(SlopsConfig::default(), &mut t)
        };
        assert_eq!(blocking, stepped, "divergence at seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Equivalence holds under arbitrary avail-bw, clock offsets, grey
    /// noise, loss, and transport ceilings — the whole oracle parameter
    /// space, not just the happy path.
    #[test]
    fn equivalence_over_oracle_parameter_space(
        a_mbps in 5.0f64..100.0,
        seed in 0u64..10_000,
        offset in -1_000_000_000i64..1_000_000_000,
        halfwidth in 0.0f64..5.0,
        loss in 0.0f64..0.05,
        cap in 0u8..2,
    ) {
        let make = || {
            let mut t = OracleTransport::new(Rate::from_mbps(a_mbps), seed);
            t.clock_offset_ns = offset;
            t.avail_halfwidth = Rate::from_mbps(halfwidth);
            t.loss_prob = loss;
            if cap == 1 {
                t.max_rate = Some(Rate::from_mbps(60.0));
            }
            t
        };
        let blocking = Session::new(SlopsConfig::default()).run(&mut make()).unwrap();
        let stepped = hand_step(SlopsConfig::default(), &mut make());
        prop_assert_eq!(blocking, stepped);
    }
}

/// The trace a measurement emits is minted entirely inside the sans-IO
/// machine, so the blocking driver and a hand-stepped machine produce
/// byte-identical event sequences — phases, stream verdicts, fleet
/// verdicts, and termination, in order.
#[test]
fn blocking_driver_trace_equals_hand_stepped_trace() {
    for seed in [0u64, 5, 11] {
        let a = Rate::from_mbps(9.0 + 13.0 * seed as f64);
        let blocking_trace = {
            let sink = Arc::new(VecSink::new());
            let mut t = OracleTransport::new(a, seed);
            Session::new(SlopsConfig::default())
                .with_trace_sink(sink.clone())
                .run(&mut t)
                .unwrap();
            sink.take()
        };
        let stepped_trace = {
            let mut t = OracleTransport::new(a, seed);
            let mut m = SessionMachine::new(SlopsConfig::default(), t.rtt(), t.max_rate()).unwrap();
            let mut trace = Vec::new();
            loop {
                let cmd = m.poll().expect("no command pending at loop head");
                trace.extend(m.take_trace());
                let event = match cmd {
                    Command::SendTrain { len, size } => {
                        Event::TrainDone(t.send_train(len, size).unwrap())
                    }
                    Command::SendStream(req) => Event::StreamDone(t.send_stream(&req).unwrap()),
                    Command::Idle(dur) => {
                        t.idle(dur);
                        Event::Tick(t.elapsed())
                    }
                    Command::Finish(_) => break trace,
                };
                m.on_event(event).unwrap();
                trace.extend(m.take_trace());
            }
        };
        assert!(!blocking_trace.is_empty(), "trace must not be empty");
        assert_eq!(
            blocking_trace, stepped_trace,
            "trace diverged at seed {seed}"
        );
        // The trace ends with the terminal phase and the session verdict.
        let n = blocking_trace.len();
        assert!(matches!(
            blocking_trace[n - 1],
            TraceEvent::SessionDone { .. }
        ));
        assert!(matches!(
            blocking_trace[n - 2],
            TraceEvent::Phase { to: "Done", .. }
        ));
    }
}

/// On the paper's loaded 5-hop topology, the event-driven in-sim driver
/// relays the very same machine-minted trace as the blocking shim —
/// bit-identical events in identical order for the same simulator seed.
/// Drivers forward trace events; they never synthesize them.
#[test]
fn in_sim_driver_trace_equals_blocking_trace_on_paper_path() {
    let path_cfg = PaperPathConfig::default();
    for seed in [7u64, 77] {
        let blocking_trace = {
            let sink = Arc::new(VecSink::new());
            let mut t = PaperPath::build(&path_cfg, seed).into_transport();
            Session::new(SlopsConfig::default())
                .with_trace_sink(sink.clone())
                .run(&mut t)
                .unwrap();
            sink.take()
        };
        let in_sim_trace = {
            let sink = Arc::new(VecSink::new());
            let t = PaperPath::build(&path_cfg, seed).into_transport();
            let chain = t.chain().clone();
            let mut sim = t.into_sim();
            let id = install_session(&mut sim, &chain, SlopsConfig::default()).unwrap();
            sim.app_mut::<SessionApp>(id).set_trace_sink(sink.clone());
            run_session(&mut sim, id, TimeNs::from_secs(3600)).expect("session finished");
            sink.take()
        };
        assert!(!blocking_trace.is_empty(), "trace must not be empty");
        assert_eq!(
            blocking_trace, in_sim_trace,
            "traces diverged at seed {seed}"
        );
    }
}

/// On the paper's loaded 5-hop topology, the event-driven in-sim driver
/// reports the same estimate as the blocking shim for the same seed: the
/// two drivers inject identical packet sequences into identical cross
/// traffic.
#[test]
fn in_sim_driver_equals_blocking_shim_on_paper_path() {
    let path_cfg = PaperPathConfig::default();
    for seed in [7u64, 77, 777] {
        let blocking = {
            let mut t = PaperPath::build(&path_cfg, seed).into_transport();
            Session::new(SlopsConfig::default()).run(&mut t).unwrap()
        };
        let in_sim = {
            let t = PaperPath::build(&path_cfg, seed).into_transport();
            let chain = t.chain().clone();
            let mut sim = t.into_sim();
            let id = install_session(&mut sim, &chain, SlopsConfig::default()).unwrap();
            run_session(&mut sim, id, TimeNs::from_secs(3600)).expect("session finished")
        };
        assert_eq!(blocking, in_sim, "drivers diverged at seed {seed}");
        // Sanity: the measurement itself is meaningful (A = 4 Mb/s).
        assert!(blocking.low.mbps() <= 8.0 && blocking.high.mbps() >= 1.0);
    }
}

/// Two in-sim sessions can share one simulation — something the blocking
/// shim structurally cannot do. Their estimates must both bracket their
/// paths' avail-bw.
#[test]
fn two_sessions_run_concurrently_in_one_simulation() {
    use availbw::netsim::{Chain, ChainConfig, LinkConfig, Simulator};
    let mut sim = Simulator::new(99);
    let mk = |cap: f64| {
        ChainConfig::symmetric(vec![
            LinkConfig::new(Rate::from_mbps(cap), TimeNs::from_millis(5)),
            LinkConfig::new(Rate::from_mbps(cap - 2.0), TimeNs::from_millis(5)),
        ])
    };
    // Two disjoint paths in one simulation, measured simultaneously.
    let chain_a = Chain::build(&mut sim, &mk(10.0)); // narrow 8 Mb/s
    let chain_b = Chain::build(&mut sim, &mk(20.0)); // narrow 18 Mb/s
    let id_a = install_session(&mut sim, &chain_a, SlopsConfig::default()).unwrap();
    let id_b = install_session(&mut sim, &chain_b, SlopsConfig::default()).unwrap();
    let est_a = run_session(&mut sim, id_a, TimeNs::from_secs(3600)).unwrap();
    let est_b = run_session(&mut sim, id_b, TimeNs::from_secs(3600)).unwrap();
    assert!(
        est_a.low.mbps() <= 8.0 && 8.0 <= est_a.high.mbps() + 0.5,
        "path A reported [{}, {}]",
        est_a.low,
        est_a.high
    );
    assert!(
        est_b.low.mbps() <= 18.0 && 18.0 <= est_b.high.mbps() + 0.5,
        "path B reported [{}, {}]",
        est_b.low,
        est_b.high
    );
}
