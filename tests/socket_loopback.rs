//! The real-socket pathload, end to end over loopback: the same
//! `slops::Session` that drives the simulator drives real UDP/TCP sockets.

use availbw::pathload_net::{Receiver, SocketDriver, SocketTransport};
use availbw::slops::machine::{Command, SessionMachine};
use availbw::slops::{ProbeTransport, Session, SlopsConfig};
use availbw::units::{Rate, TimeNs};
use std::thread;

fn gentle_cfg() -> SlopsConfig {
    let mut cfg = SlopsConfig::default();
    cfg.stream_len = 30;
    cfg.fleet_len = 4;
    cfg.min_period = TimeNs::from_millis(1);
    cfg.resolution = Rate::from_mbps(8.0);
    cfg.grey_resolution = Rate::from_mbps(16.0);
    cfg.max_fleets = 8;
    cfg
}

#[test]
fn full_session_runs_over_loopback() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_one());
    let mut t = SocketTransport::connect(addr).unwrap();
    t.rate_cap = Rate::from_mbps(40.0);
    let est = Session::new(gentle_cfg()).run(&mut t).expect("session");
    // Loopback has no bottleneck; the estimate is meaningless but the
    // protocol must complete with sane outputs.
    assert!(est.low.bps() <= est.high.bps());
    assert!(!est.fleets.is_empty());
    drop(t);
    server.join().unwrap().unwrap();
}

/// The explicit machine-level socket driver: hand-step the sans-IO
/// machine command by command over real sockets, checking the strict
/// poll/event alternation at every step — the wire-level extension of
/// `tests/driver_equivalence.rs`'s hand-stepped contract test.
#[test]
fn hand_stepped_machine_runs_over_loopback_sockets() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_one());
    let mut driver = SocketDriver::connect(addr).unwrap();
    driver.transport_mut().rate_cap = Rate::from_mbps(40.0);
    let rtt = driver.transport_mut().rtt();
    let max_rate = driver.transport_mut().max_rate();
    let mut machine = SessionMachine::new(gentle_cfg(), rtt, max_rate).unwrap();
    let est = loop {
        let cmd = machine.poll().expect("no command pending at loop head");
        if let Command::Finish(est) = cmd {
            break *est;
        }
        assert!(
            machine.poll().is_none(),
            "machine must pend while {cmd:?} executes"
        );
        let event = driver.execute(&cmd).expect("wire operation");
        machine.on_event(event).expect("event answers the command");
    };
    assert!(machine.is_finished());
    assert!(est.low.bps() <= est.high.bps());
    assert!(!est.fleets.is_empty());
    drop(driver);
    server.join().unwrap().unwrap();
}

/// `SocketDriver::run` completes a whole session, like `Session::run`
/// over the same transport (both are pumps around the same machine).
#[test]
fn socket_driver_run_completes_a_session() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_one());
    let mut driver = SocketDriver::connect(addr).unwrap();
    driver.transport_mut().rate_cap = Rate::from_mbps(40.0);
    let est = driver.run(gentle_cfg()).expect("session");
    assert!(est.low.bps() <= est.high.bps());
    assert!(
        est.elapsed > TimeNs::ZERO,
        "elapsed must be wall-clock stamped"
    );
    drop(driver);
    server.join().unwrap().unwrap();
}

#[test]
fn receiver_serves_two_sessions_sequentially() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || {
        rx.serve_one().unwrap();
        rx.serve_one().unwrap();
    });
    use availbw::slops::ProbeTransport as _;
    for _ in 0..2 {
        let mut t = SocketTransport::connect(addr).unwrap();
        let rec = t.send_train(10, 600).unwrap();
        assert!(rec.received >= 8);
        drop(t);
    }
    server.join().unwrap();
}

#[test]
fn rtt_and_idle_behave() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_one());
    let mut t = SocketTransport::connect(addr).unwrap();
    let rtt = availbw::slops::ProbeTransport::rtt(&mut t);
    assert!(rtt < TimeNs::from_millis(100), "loopback RTT {rtt}");
    let before = availbw::slops::ProbeTransport::elapsed(&t);
    availbw::slops::ProbeTransport::idle(&mut t, TimeNs::from_millis(20));
    let after = availbw::slops::ProbeTransport::elapsed(&t);
    assert!(after - before >= TimeNs::from_millis(19));
    drop(t);
    server.join().unwrap().unwrap();
}
