//! The real-socket pathload, end to end over loopback: the same
//! `slops::Session` that drives the simulator drives real UDP/TCP sockets.

use availbw::pathload_net::{Receiver, SocketTransport};
use availbw::slops::{Session, SlopsConfig};
use availbw::units::{Rate, TimeNs};
use std::thread;

fn gentle_cfg() -> SlopsConfig {
    let mut cfg = SlopsConfig::default();
    cfg.stream_len = 30;
    cfg.fleet_len = 4;
    cfg.min_period = TimeNs::from_millis(1);
    cfg.resolution = Rate::from_mbps(8.0);
    cfg.grey_resolution = Rate::from_mbps(16.0);
    cfg.max_fleets = 8;
    cfg
}

#[test]
fn full_session_runs_over_loopback() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_one());
    let mut t = SocketTransport::connect(addr).unwrap();
    t.rate_cap = Rate::from_mbps(40.0);
    let est = Session::new(gentle_cfg()).run(&mut t).expect("session");
    // Loopback has no bottleneck; the estimate is meaningless but the
    // protocol must complete with sane outputs.
    assert!(est.low.bps() <= est.high.bps());
    assert!(!est.fleets.is_empty());
    drop(t);
    server.join().unwrap().unwrap();
}

#[test]
fn receiver_serves_two_sessions_sequentially() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || {
        rx.serve_one().unwrap();
        rx.serve_one().unwrap();
    });
    use availbw::slops::ProbeTransport as _;
    for _ in 0..2 {
        let mut t = SocketTransport::connect(addr).unwrap();
        let rec = t.send_train(10, 600).unwrap();
        assert!(rec.received >= 8);
        drop(t);
    }
    server.join().unwrap();
}

#[test]
fn rtt_and_idle_behave() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_one());
    let mut t = SocketTransport::connect(addr).unwrap();
    let rtt = availbw::slops::ProbeTransport::rtt(&mut t);
    assert!(rtt < TimeNs::from_millis(100), "loopback RTT {rtt}");
    let before = availbw::slops::ProbeTransport::elapsed(&t);
    availbw::slops::ProbeTransport::idle(&mut t, TimeNs::from_millis(20));
    let after = availbw::slops::ProbeTransport::elapsed(&t);
    assert!(after - before >= TimeNs::from_millis(19));
    drop(t);
    server.join().unwrap().unwrap();
}
