//! Helpers shared by the socket-facing integration tests.

/// Parse one flat JSONL record (`{"k":"str",...,"k":123}`) into pairs.
/// Only what the export layer emits: string and number values, no
/// nesting. Returns `None` on any malformed syntax.
pub fn parse_flat_json(line: &str) -> Option<Vec<(String, String)>> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = Vec::new();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        // Key: a quoted string.
        if chars.next()? != '"' {
            return None;
        }
        let mut key = String::new();
        loop {
            match chars.next()? {
                '\\' => {
                    key.push(chars.next()?);
                }
                '"' => break,
                c => key.push(c),
            }
        }
        if chars.next()? != ':' {
            return None;
        }
        // Value: a quoted string or a bare number.
        let mut value = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            loop {
                match chars.next()? {
                    '\\' => {
                        value.push(chars.next()?);
                    }
                    '"' => break,
                    c => value.push(c),
                }
            }
        } else {
            while matches!(chars.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            {
                value.push(chars.next()?);
            }
            value.parse::<f64>().ok()?; // must be a number
        }
        fields.push((key, value));
        match chars.next()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    if chars.next().is_some() {
        return None; // trailing garbage
    }
    Some(fields)
}

/// Look a key up in a parsed flat record.
pub fn field<'a>(rec: &'a [(String, String)], key: &str) -> Option<&'a str> {
    rec.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}
