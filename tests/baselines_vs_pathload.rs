//! The §II comparison, quantified: on the same loaded path, cprobe reports
//! the ADR (well above the avail-bw), TOPP and pathload report the
//! avail-bw.

use availbw::baselines::{cprobe, topp, CprobeConfig, ToppConfig};
use availbw::simprobe::scenarios::{PaperPath, PaperPathConfig};
use availbw::slops::{Session, SlopsConfig};
use availbw::units::Rate;

fn paper_path(seed: u64) -> availbw::simprobe::SimTransport {
    PaperPath::build(&PaperPathConfig::default(), seed).into_transport()
}

#[test]
fn cprobe_overestimates_avail_bw() {
    // A = 4 Mb/s, tight capacity 10 Mb/s: the ADR lands in between.
    let mut t = paper_path(42);
    let est = cprobe(&mut t, &CprobeConfig::default()).unwrap();
    assert!(
        est.reported.mbps() > 5.5,
        "cprobe should report well above A=4, got {}",
        est.reported
    );
    assert!(
        est.reported.mbps() <= 10.5,
        "cprobe cannot exceed the narrow capacity, got {}",
        est.reported
    );
}

#[test]
fn topp_brackets_avail_bw_and_capacity() {
    let mut t = paper_path(43);
    let cfg = ToppConfig {
        min_rate: Rate::from_mbps(1.0),
        max_rate: Rate::from_mbps(12.0),
        steps: 23,
        stream_len: 100,
        ..ToppConfig::default()
    };
    let est = topp(&mut t, &cfg).unwrap();
    assert!(
        (est.avail_bw.mbps() - 4.0).abs() < 2.0,
        "TOPP avail-bw {} should be near 4 Mb/s",
        est.avail_bw
    );
    assert!(
        (est.capacity.mbps() - 10.0).abs() < 3.5,
        "TOPP capacity {} should be near the tight capacity 10 Mb/s",
        est.capacity
    );
}

#[test]
fn pathload_beats_cprobe_on_the_same_path() {
    let mut t = paper_path(44);
    let pathload = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
    let cprobe_est = cprobe(&mut t, &CprobeConfig::default()).unwrap();
    let pathload_err = (pathload.midpoint().mbps() - 4.0).abs();
    let cprobe_err = (cprobe_est.reported.mbps() - 4.0).abs();
    assert!(
        pathload_err < cprobe_err,
        "pathload midpoint {} should be closer to A=4 than cprobe {}",
        pathload.midpoint(),
        cprobe_est.reported
    );
}
