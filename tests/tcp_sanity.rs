//! Cross-crate TCP behavior: greedy connections against cross traffic,
//! bandwidth stealing from window-limited flows, and the §VII regime.

use availbw::netsim::app::CountingSink;
use availbw::netsim::{Chain, ChainConfig, LinkConfig, Simulator};
use availbw::tcpsim::{TcpConnection, TcpSender, TcpSenderConfig, MSS};
use availbw::traffic::{attach_sources, SourceConfig};
use availbw::units::{Rate, TimeNs};

fn tight_path(sim: &mut Simulator) -> Chain {
    Chain::build(
        sim,
        &ChainConfig::symmetric(vec![
            LinkConfig::new(Rate::from_mbps(100.0), TimeNs::from_millis(5)),
            LinkConfig::new(Rate::from_mbps(8.2), TimeNs::from_millis(20))
                .with_queue_limit(180 * 1024),
            LinkConfig::new(Rate::from_mbps(100.0), TimeNs::from_millis(5)),
        ]),
    )
}

#[test]
fn greedy_tcp_fills_leftover_capacity_over_udp() {
    let mut sim = Simulator::new(21);
    let chain = tight_path(&mut sim);
    let sink = sim.add_app(Box::new(CountingSink::default()));
    let route = chain.hop_route(&sim, 1, sink);
    // 3 Mb/s of unreactive UDP leaves ~5.2 Mb/s for TCP.
    attach_sources(
        &mut sim,
        route,
        Rate::from_mbps(3.0),
        6,
        &SourceConfig::paper_poisson(),
    );
    let conn = TcpConnection::greedy(&mut sim, &chain, 1);
    sim.run_until(TimeNs::from_secs(60));
    let tput = conn.throughput(&sim, TimeNs::from_secs(10), TimeNs::from_secs(60));
    assert!(
        tput.mbps() > 3.9 && tput.mbps() < 5.3,
        "greedy TCP over UDP: got {tput}, expected ~4.3-5 Mb/s"
    );
}

#[test]
fn btc_steals_from_window_limited_flows_via_rtt_inflation() {
    let mut sim = Simulator::new(22);
    let chain = tight_path(&mut sim);
    // Four window-limited flows: throughput = rwnd/RTT, RTT-sensitive.
    let mut limited = Vec::new();
    for k in 0..4 {
        let mut cfg = TcpSenderConfig::greedy(10 + k);
        cfg.rwnd = Some(2 * MSS as u64);
        limited.push(TcpConnection::start_at(
            &mut sim,
            &chain,
            cfg,
            TimeNs::from_millis(100 * k as u64),
        ));
    }
    sim.run_until(TimeNs::from_secs(40));
    let before: f64 = limited
        .iter()
        .map(|c| {
            c.throughput(&sim, TimeNs::from_secs(10), TimeNs::from_secs(40))
                .mbps()
        })
        .sum();

    // A greedy connection joins and fills the buffer.
    let start = sim.now();
    let btc = TcpConnection::start_at(&mut sim, &chain, TcpSenderConfig::greedy(1), start);
    sim.run_until(start + TimeNs::from_secs(40));
    let during: f64 = limited
        .iter()
        .map(|c| {
            c.throughput(&sim, start, start + TimeNs::from_secs(40))
                .mbps()
        })
        .sum();
    let btc_tput = btc.throughput(&sim, start, start + TimeNs::from_secs(40));

    assert!(
        during < before * 0.7,
        "window-limited flows should lose >30% of throughput: {before:.2} -> {during:.2} Mb/s"
    );
    assert!(
        btc_tput.mbps() > 5.0,
        "the greedy flow should take the majority of the link, got {btc_tput}"
    );
}

#[test]
fn stopped_btc_drains_and_stays_quiet() {
    let mut sim = Simulator::new(23);
    let chain = tight_path(&mut sim);
    let conn = TcpConnection::greedy(&mut sim, &chain, 1);
    sim.run_until(TimeNs::from_secs(10));
    sim.app_mut::<TcpSender>(conn.sender).stop();
    sim.run_until(TimeNs::from_secs(12));
    let after_stop = conn.delivered(&sim);
    sim.run_until(TimeNs::from_secs(20));
    assert_eq!(
        conn.delivered(&sim),
        after_stop,
        "no data may arrive long after stop()"
    );
}

#[test]
fn many_finite_transfers_complete() {
    let mut sim = Simulator::new(24);
    let chain = tight_path(&mut sim);
    let mut conns = Vec::new();
    let mut rng = sim.rng();
    let mut t = 0.0;
    for i in 0..40u32 {
        t += rng.exponential(0.5);
        let mut cfg = TcpSenderConfig::greedy(100 + i);
        cfg.limit = Some(50_000 + rng.below(200_000));
        conns.push((
            cfg.limit.unwrap(),
            TcpConnection::start_at(&mut sim, &chain, cfg, TimeNs::from_secs_f64(t)),
        ));
    }
    sim.run_until(TimeNs::from_secs(120));
    let done = conns
        .iter()
        .filter(|(limit, c)| c.delivered(&sim) == *limit)
        .count();
    assert!(
        done >= 38,
        "only {done}/40 transfers completed within 120 s"
    );
}
