//! The async (event-loop) socket driver, end to end over loopback.
//!
//! Three layers are pinned here, matching the DRIVERS.md checklist for a
//! new driver:
//!
//! 1. **the hand-stepped contract test** — an [`EventedSession`] driven
//!    one event-loop wait at a time, with the machine's `poll() == None`
//!    invariant asserted while every command is in flight;
//! 2. **a big fleet** — ≥32 loopback paths multiplexed on ONE event-loop
//!    thread against ONE shared multi-session receiver, with every JSONL
//!    line the daemon would emit parsed and checked;
//! 3. **thread-vs-async structural equivalence** — both fleet drivers run
//!    the same seeded schedule; per-path sample counts, the tick-grid
//!    start offsets, and the record schema must agree. (Real sockets are
//!    nondeterministic, so the estimates themselves are not compared —
//!    the same standard as `tests/socket_loopback.rs`.)

// The evented driver is Unix-only (raw-fd registration with epoll).
#![cfg(unix)]

use availbw::monitord::export::{sample_line, summary_line};
use availbw::monitord::{
    run_socket_fleet_async, run_socket_fleet_async_with_telemetry, run_socket_fleet_with_shutdown,
    run_socket_fleet_with_telemetry, FleetEvent, FleetTelemetry, ScheduleConfig, SeriesConfig,
    ShutdownFlag, SocketPathSpec,
};
use availbw::pathload_net::clock::MonoClock;
use availbw::pathload_net::mux::{EventLoop, MuxEvent};
#[cfg(target_os = "linux")]
use availbw::pathload_net::{EventedReceiver, EventedReceiverHandle};
use availbw::pathload_net::{EventedSession, Receiver, SessionTokens, SocketTransport};
use availbw::slops::series::RangeSample;
use availbw::slops::SlopsConfig;
use availbw::units::{Rate, TimeNs};
use std::thread;
use std::time::{Duration, Instant};

mod common;
use common::{field, parse_flat_json};

const RATE_CAP_MBPS: f64 = 30.0;

/// The tests here are wall-clock sensitive (schedules, pacing) and CPU
/// hungry (32 concurrent loopback paths); running them in parallel on a
/// small CI box makes measurements overrun their periods. Serialize them.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Gentle probing so a loopback measurement lasts well under a second.
fn gentle_cfg() -> SlopsConfig {
    let mut cfg = SlopsConfig::default();
    cfg.stream_len = 20;
    cfg.fleet_len = 3;
    cfg.min_period = TimeNs::from_millis(1);
    cfg.resolution = Rate::from_mbps(10.0);
    cfg.grey_resolution = Rate::from_mbps(20.0);
    cfg.max_fleets = 4;
    cfg
}

/// The DRIVERS.md hand-stepped contract test, evented edition: one
/// session over real loopback sockets, the event loop drained one wait
/// at a time, and between every batch of events the machine invariant is
/// asserted — `poll()` returns `None` exactly while the driver is
/// executing a command. The session must still converge to a sane
/// estimate with a driver-stamped `elapsed`.
#[test]
fn hand_stepped_evented_session_honors_the_machine_contract() {
    let _serial = serialized();
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_one());

    let clock = MonoClock::new();
    let mut transport = SocketTransport::connect_with_clock(addr, clock.same_epoch()).unwrap();
    transport.rate_cap = Rate::from_mbps(RATE_CAP_MBPS);
    let tokens = SessionTokens {
        ctrl: 1,
        probe: 2,
        timer: 3,
    };
    let mut session = EventedSession::new(transport, gentle_cfg(), tokens)
        .map_err(|(_, e)| e)
        .unwrap();
    let mut lp = EventLoop::new(clock.same_epoch()).unwrap();
    session.register(&lp).unwrap();

    let started = Instant::now();
    let mut events: Vec<MuxEvent> = Vec::new();
    let mut saw_in_flight = false;
    while !session.is_finished() {
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "session did not terminate"
        );
        if session.command_in_flight() {
            saw_in_flight = true;
            let machine = session
                .machine_mut()
                .expect("a machine exists once commands execute");
            assert!(
                machine.poll().is_none(),
                "poll() must be None while a command is in flight"
            );
            assert!(!machine.is_finished());
        }
        events.clear();
        lp.wait(&mut events, Duration::from_millis(50)).unwrap();
        for ev in &events {
            session.on_event(&mut lp, ev);
        }
    }
    assert!(saw_in_flight, "the loop never observed a command in flight");

    let (transport, outcome) = session.finish(&lp);
    let est = outcome.expect("loopback session succeeds");
    assert!(est.low.bps() <= est.high.bps());
    assert!(!est.fleets.is_empty(), "empty fleet trace");
    assert!(est.elapsed > TimeNs::ZERO, "driver must stamp elapsed");
    assert!(
        est.high.mbps() <= RATE_CAP_MBPS + 8.0,
        "estimate above the pacing cap: {}",
        est.high
    );
    drop(transport);
    server.join().unwrap().unwrap();
}

/// A ≥32-path loopback fleet on the async driver: one event-loop thread,
/// one shared multi-session receiver, every path sampled before the
/// horizon, no errors, and every JSONL line the daemon would emit parses
/// with the right shape.
#[test]
fn thirty_two_path_fleet_on_one_event_loop_thread() {
    let _serial = serialized();
    const N: usize = 32;
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(N));
    let specs: Vec<SocketPathSpec> = (0..N)
        .map(|i| SocketPathSpec {
            label: format!("lo{i}"),
            ctrl_addr: addr,
            cfg: gentle_cfg(),
            rate_cap: Some(Rate::from_mbps(RATE_CAP_MBPS)),
        })
        .collect();
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(5),
        jitter: TimeNs::from_millis(200),
        max_concurrent: 8,
        seed: 7,
    };

    // Collect the JSONL lines exactly as the binary would emit them.
    let mut lines: Vec<String> = Vec::new();
    let series = run_socket_fleet_async(
        specs,
        &sched,
        &SeriesConfig::default(),
        TimeNs::from_secs(6),
        |ev| match ev {
            FleetEvent::Sample {
                path,
                label,
                sample,
            } => lines.push(sample_line(path, label, &sample)),
            FleetEvent::Failed { path, error, .. } => {
                panic!("path {path} failed on loopback: {error}")
            }
            FleetEvent::Change { .. } => {} // possible, not asserted
        },
    )
    .unwrap();
    for (p, s) in series.iter().enumerate() {
        lines.push(summary_line(p, s));
    }

    let mut samples_seen = [0usize; N];
    let mut summaries_seen = [0usize; N];
    for line in &lines {
        let rec = parse_flat_json(line).unwrap_or_else(|| panic!("bad JSONL: {line}"));
        match field(&rec, "type") {
            Some("sample") => {
                let p: usize = field(&rec, "path").unwrap().parse().unwrap();
                assert!(p < N, "{line}");
                assert_eq!(field(&rec, "label").unwrap(), format!("lo{p}"));
                let low: f64 = field(&rec, "low_bps").unwrap().parse().unwrap();
                let high: f64 = field(&rec, "high_bps").unwrap().parse().unwrap();
                assert!(0.0 <= low && low <= high, "{line}");
                let dur: f64 = field(&rec, "duration_ns").unwrap().parse().unwrap();
                assert!(dur > 0.0, "{line}");
                samples_seen[p] += 1;
            }
            Some("summary") => {
                let p: usize = field(&rec, "path").unwrap().parse().unwrap();
                assert_eq!(field(&rec, "errors").unwrap(), "0", "{line}");
                summaries_seen[p] += 1;
            }
            other => panic!("unexpected record type {other:?}: {line}"),
        }
    }

    assert_eq!(series.len(), N);
    for (p, s) in series.iter().enumerate() {
        assert!(
            samples_seen[p] >= 1,
            "path {p} was never measured within the horizon"
        );
        assert_eq!(summaries_seen[p], 1, "path {p}: wrong summary count");
        assert_eq!(s.len(), samples_seen[p], "path {p}: streamed != stored");
        assert_eq!(s.errors(), 0, "path {p} errored");
    }
    server.join().unwrap().unwrap();
}

/// Run one fleet driver over a dedicated shared receiver and return the
/// per-path `(started, duration)` samples plus the JSONL lines.
fn run_driver(
    use_async: bool,
    n: usize,
    sched: &ScheduleConfig,
    horizon: TimeNs,
) -> (Vec<Vec<RangeSample>>, Vec<String>) {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(n));
    let specs: Vec<SocketPathSpec> = (0..n)
        .map(|i| SocketPathSpec {
            label: format!("p{i}"),
            ctrl_addr: addr,
            cfg: gentle_cfg(),
            rate_cap: Some(Rate::from_mbps(RATE_CAP_MBPS)),
        })
        .collect();
    let mut lines = Vec::new();
    let observer = |ev: FleetEvent<'_>| {
        if let FleetEvent::Sample {
            path,
            label,
            sample,
        } = ev
        {
            lines.push(sample_line(path, label, &sample));
        }
    };
    let series = if use_async {
        run_socket_fleet_async(specs, sched, &SeriesConfig::default(), horizon, observer).unwrap()
    } else {
        run_socket_fleet_with_shutdown(
            specs,
            sched,
            &SeriesConfig::default(),
            horizon,
            2,
            &ShutdownFlag::new(),
            observer,
        )
        .unwrap()
    };
    server.join().unwrap().unwrap();
    let samples = series
        .iter()
        .map(|s| s.samples().copied().collect())
        .collect();
    (samples, lines)
}

/// Run one fleet driver with the full telemetry wiring and return the
/// number of samples observed plus the registry's Prometheus snapshot.
fn run_driver_with_telemetry(
    use_async: bool,
    n: usize,
    sched: &ScheduleConfig,
    horizon: TimeNs,
) -> (usize, String) {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(n));
    let specs: Vec<SocketPathSpec> = (0..n)
        .map(|i| SocketPathSpec {
            label: format!("p{i}"),
            ctrl_addr: addr,
            cfg: gentle_cfg(),
            rate_cap: Some(Rate::from_mbps(RATE_CAP_MBPS)),
        })
        .collect();
    let telemetry = FleetTelemetry::new();
    let mut samples = 0usize;
    let observer = |ev: FleetEvent<'_>| match ev {
        FleetEvent::Sample { .. } => samples += 1,
        FleetEvent::Failed { path, error, .. } => {
            panic!("path {path} failed on loopback: {error}")
        }
        FleetEvent::Change { .. } => {}
    };
    if use_async {
        run_socket_fleet_async_with_telemetry(
            specs,
            sched,
            &SeriesConfig::default(),
            horizon,
            &ShutdownFlag::new(),
            Some(&telemetry),
            observer,
        )
        .unwrap();
    } else {
        run_socket_fleet_with_telemetry(
            specs,
            sched,
            &SeriesConfig::default(),
            horizon,
            2,
            &ShutdownFlag::new(),
            Some(&telemetry),
            observer,
        )
        .unwrap();
    }
    server.join().unwrap().unwrap();
    (samples, telemetry.registry().render_prometheus())
}

/// The machine-trace series of one Prometheus snapshot: every
/// `name{labels}` key of the families minted from machine trace events,
/// plus the summed value of one family for cross-checks.
fn trace_series(text: &str) -> (Vec<String>, u64) {
    const FAMILIES: [&str; 3] = [
        "streams_total{",
        "fleet_verdicts_total{",
        "sessions_done_total{",
    ];
    let mut keys = Vec::new();
    let mut sessions_done = 0u64;
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if FAMILIES.iter().any(|f| line.starts_with(f)) {
            let (key, value) = line.rsplit_once(' ').expect("metric line has a value");
            keys.push(key.to_string());
            if key.starts_with("sessions_done_total{") {
                sessions_done += value.parse::<u64>().expect("counter value");
            }
        }
    }
    keys.sort();
    (keys, sessions_done)
}

/// Thread-vs-async trace-event equivalence: both drivers only RELAY the
/// machine-minted trace into the shared registry, so they surface the
/// exact same machine-trace series (same families, same label
/// vocabulary, same paths), and in both runs every recorded sample is
/// matched by exactly one machine-minted `SessionDone`. Real-socket
/// timing makes the verdict distributions differ; the series themselves
/// must not.
#[test]
fn thread_and_async_drivers_relay_the_same_machine_trace() {
    let _serial = serialized();
    const N: usize = 2;
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(2),
        jitter: TimeNs::from_millis(100),
        max_concurrent: N,
        seed: 42,
    };
    let horizon = TimeNs::from_secs(5);
    let (thread_samples, thread_text) = run_driver_with_telemetry(false, N, &sched, horizon);
    let (async_samples, async_text) = run_driver_with_telemetry(true, N, &sched, horizon);

    let (thread_keys, thread_done) = trace_series(&thread_text);
    let (async_keys, async_done) = trace_series(&async_text);
    assert!(!thread_keys.is_empty(), "no machine-trace series surfaced");
    assert_eq!(
        thread_keys, async_keys,
        "drivers surfaced different machine-trace series"
    );
    assert_eq!(
        thread_done, thread_samples as u64,
        "thread driver: samples without a machine-minted SessionDone"
    );
    assert_eq!(
        async_done, async_samples as u64,
        "async driver: samples without a machine-minted SessionDone"
    );
    // Both runs actually measured something.
    assert!(thread_samples >= N, "thread driver measured too little");
    assert!(async_samples >= N, "async driver measured too little");
    // Both drivers also fed the per-path pacing histograms.
    for text in [&thread_text, &async_text] {
        for p in 0..N {
            let needle = format!("pacing_error_ns_count{{path=\"p{p}\"}}");
            let line = text
                .lines()
                .find(|l| l.starts_with(&needle))
                .unwrap_or_else(|| panic!("missing {needle}"));
            let count: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(count > 0, "path p{p} paced no packets");
        }
    }
}

/// One far end of a fleet run: a threaded receiver thread or an evented
/// receiver handle.
#[cfg(target_os = "linux")]
enum FarEnd {
    Threaded(thread::JoinHandle<std::io::Result<()>>),
    Evented(EventedReceiverHandle),
}

/// Run one async-driver fleet against either receiver shape, with the
/// receiver's metrics registered on the fleet's registry. Returns the
/// per-path samples, the JSONL sample lines, and the registry's
/// Prometheus snapshot.
#[cfg(target_os = "linux")]
fn run_fleet_against_receiver(
    evented: bool,
    n: usize,
    sched: &ScheduleConfig,
    horizon: TimeNs,
) -> (Vec<Vec<RangeSample>>, Vec<String>, String) {
    let telemetry = FleetTelemetry::new();
    let (addr, far_end) = if evented {
        let rx = EventedReceiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        rx.register_metrics(telemetry.registry());
        let handle = rx.spawn();
        (handle.ctrl_addr(), FarEnd::Evented(handle))
    } else {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        rx.register_metrics(telemetry.registry());
        let addr = rx.ctrl_addr();
        (addr, FarEnd::Threaded(thread::spawn(move || rx.serve_n(n))))
    };
    let specs: Vec<SocketPathSpec> = (0..n)
        .map(|i| SocketPathSpec {
            label: format!("p{i}"),
            ctrl_addr: addr,
            cfg: gentle_cfg(),
            rate_cap: Some(Rate::from_mbps(RATE_CAP_MBPS)),
        })
        .collect();
    let mut lines = Vec::new();
    let series = run_socket_fleet_async_with_telemetry(
        specs,
        sched,
        &SeriesConfig::default(),
        horizon,
        &ShutdownFlag::new(),
        Some(&telemetry),
        |ev| match ev {
            FleetEvent::Sample {
                path,
                label,
                sample,
            } => lines.push(sample_line(path, label, &sample)),
            FleetEvent::Failed { path, error, .. } => {
                panic!("path {path} failed on loopback: {error}")
            }
            FleetEvent::Change { .. } => {}
        },
    )
    .unwrap();
    match far_end {
        FarEnd::Threaded(h) => h.join().unwrap().unwrap(),
        FarEnd::Evented(h) => h.stop().unwrap(),
    }
    let samples = series
        .iter()
        .map(|s| s.samples().copied().collect())
        .collect();
    (samples, lines, telemetry.registry().render_prometheus())
}

/// The `receiver_*` metric family names of one Prometheus snapshot.
#[cfg(target_os = "linux")]
fn receiver_families(text: &str) -> std::collections::BTreeSet<String> {
    text.lines()
        .filter(|l| !l.starts_with('#') && l.starts_with("receiver_"))
        .map(|l| {
            l.split(['{', ' '])
                .next()
                .expect("metric line has a name")
                .to_string()
        })
        .collect()
}

/// Threaded-vs-evented **receiver** structural equivalence: the same
/// 32-path async fleet (same seed, schedule, configs) runs against both
/// receiver shapes. The far end must be interchangeable: per-path sample
/// counts equal, every path measured, one uniform JSONL schema across
/// both runs, and the demux metric surface identical — the same six
/// `receiver_demux_*`/`receiver_collect_*`/`receiver_sessions_denied_total`
/// families with routed traffic in both. (Estimates are not compared:
/// real sockets are nondeterministic.)
#[cfg(target_os = "linux")]
#[test]
fn threaded_and_evented_receivers_are_structurally_equivalent() {
    let _serial = serialized();
    const N: usize = 32;
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(5),
        jitter: TimeNs::from_millis(200),
        max_concurrent: 8,
        seed: 7,
    };
    let horizon = TimeNs::from_secs(6);
    let (t_samples, t_lines, t_text) = run_fleet_against_receiver(false, N, &sched, horizon);
    let (e_samples, e_lines, e_text) = run_fleet_against_receiver(true, N, &sched, horizon);

    // Same per-path sample counts, every path measured.
    let counts = |s: &Vec<Vec<RangeSample>>| s.iter().map(|p| p.len()).collect::<Vec<_>>();
    assert_eq!(
        counts(&t_samples),
        counts(&e_samples),
        "receiver shapes yielded different sample counts"
    );
    for (p, samples) in t_samples.iter().enumerate() {
        assert!(!samples.is_empty(), "path {p} was never measured");
    }

    // One uniform JSONL schema across both runs.
    let keys = |line: &String| {
        parse_flat_json(line)
            .unwrap_or_else(|| panic!("bad JSONL: {line}"))
            .into_iter()
            .map(|(k, _)| k)
            .collect::<Vec<_>>()
    };
    let t_keys: Vec<_> = t_lines.iter().map(keys).collect();
    let e_keys: Vec<_> = e_lines.iter().map(keys).collect();
    assert!(!t_keys.is_empty() && !e_keys.is_empty());
    for k in t_keys.iter().chain(e_keys.iter()) {
        assert_eq!(*k, t_keys[0], "JSONL schema diverged between receivers");
    }

    // Identical demux metric surface. The evented receiver may add
    // families of its own (sessions gauge, batch-size histogram) but the
    // shared demux/collect/deny vocabulary must match exactly.
    const DEMUX: [&str; 4] = [
        "receiver_demux_routed_total",
        "receiver_demux_drops_total",
        "receiver_collect_silence_stops_total",
        "receiver_sessions_denied_total",
    ];
    let t_families = receiver_families(&t_text);
    let e_families = receiver_families(&e_text);
    for family in DEMUX {
        assert!(t_families.contains(family), "threaded run lost {family}");
        assert!(e_families.contains(family), "evented run lost {family}");
    }
    assert!(
        t_families.is_subset(&e_families),
        "evented receiver dropped families the threaded one exposes: \
         {t_families:?} vs {e_families:?}"
    );
    // Both shapes actually routed probe traffic through the demux path.
    for (who, text) in [("threaded", &t_text), ("evented", &e_text)] {
        let routed: u64 = text
            .lines()
            .find(|l| l.starts_with("receiver_demux_routed_total"))
            .and_then(|l| l.rsplit_once(' '))
            .map(|(_, v)| v.parse().expect("counter value"))
            .unwrap_or_else(|| panic!("{who}: no routed counter line"));
        assert!(routed > 0, "{who} receiver routed nothing");
    }
}

/// Thread-vs-async structural equivalence: the two drivers take every
/// start from the same sans-IO scheduler, so for the same seed they must
/// issue the same tick-grid schedule — per-path sample counts equal, and
/// each sample's start offset (relative to the fleet's first start, which
/// removes the wall-clock epoch difference between the two runs) equal to
/// the tick. The JSONL schema must match field-for-field.
#[test]
fn thread_and_async_drivers_issue_the_same_schedule() {
    let _serial = serialized();
    const N: usize = 2;
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(3),
        jitter: TimeNs::from_millis(200),
        max_concurrent: N, // never the binding constraint here
        seed: 99,
    };
    let horizon = TimeNs::from_secs(7);
    let (thread_samples, thread_lines) = run_driver(false, N, &sched, horizon);
    let (async_samples, async_lines) = run_driver(true, N, &sched, horizon);

    // Same per-path sample counts.
    let counts = |s: &Vec<Vec<RangeSample>>| s.iter().map(|p| p.len()).collect::<Vec<_>>();
    assert_eq!(
        counts(&thread_samples),
        counts(&async_samples),
        "drivers measured different sample counts"
    );

    // Same scheduler tick schedule: start offsets relative to the fleet's
    // first start are pure functions of (seed, n, period, tick grid) as
    // long as no measurement overruns its period, so they are identical
    // across drivers even though the two runs' wall-clock epochs differ.
    let offsets = |s: &Vec<Vec<RangeSample>>| {
        let t0 = s
            .iter()
            .flat_map(|p| p.iter().map(|r| r.started))
            .min()
            .expect("non-empty run");
        s.iter()
            .map(|p| p.iter().map(|r| r.started - t0).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        offsets(&thread_samples),
        offsets(&async_samples),
        "drivers diverged from the shared scheduler's tick schedule"
    );

    // Same record schema: identical key sequences on every sample line.
    let keys = |line: &String| {
        parse_flat_json(line)
            .unwrap_or_else(|| panic!("bad JSONL: {line}"))
            .into_iter()
            .map(|(k, _)| k)
            .collect::<Vec<_>>()
    };
    let thread_keys: Vec<_> = thread_lines.iter().map(keys).collect();
    let async_keys: Vec<_> = async_lines.iter().map(keys).collect();
    assert!(!thread_keys.is_empty());
    assert_eq!(thread_keys[0], async_keys[0], "record schema diverged");
    for k in thread_keys.iter().chain(async_keys.iter()) {
        assert_eq!(*k, thread_keys[0], "schema must be uniform across lines");
    }
}
