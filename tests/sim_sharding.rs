//! Sharded-engine equivalence: the per-path-event-queue simulator must be
//! **bit-identical** to the single-queue engine on every per-path
//! observable — estimates, monitoring series, and machine-minted
//! [`TraceEvent`] streams — on disjoint-path fleets (the sharding
//! contract; same shape as the batched-vs-scalar byte-identity test in
//! `tests/socket_multisession.rs`), and must fall back to the single
//! queue, still correct, whenever paths share a link.

use availbw::monitord::{
    FleetTelemetry, ScheduleConfig, SeriesConfig, SimEngine, SimFleetMonitor, SimPathSpec,
};
use availbw::netsim::{ShardRefusal, Simulator};
use availbw::simprobe::scenarios::{
    build_disjoint_paths, shared_tight_link, LinkLoad, PathOpts, SharedTightLinkConfig,
};
use availbw::simprobe::{install_session_at, SessionApp};
use availbw::slops::series::RangeSample;
use availbw::slops::SlopsConfig;
use availbw::telemetry::{TraceEvent, VecSink};
use availbw::units::{Rate, TimeNs};
use proptest::prelude::*;
use std::sync::Arc;

/// A small loaded two-path fleet (disjoint one-hop chains).
fn two_path_loads() -> Vec<Vec<LinkLoad>> {
    vec![
        vec![LinkLoad::pareto(Rate::from_mbps(10.0), 0.30, 3)],
        vec![LinkLoad::pareto(Rate::from_mbps(20.0), 0.20, 3)],
    ]
}

fn small_opts() -> PathOpts {
    let mut opts = PathOpts::default();
    opts.warmup = TimeNs::from_millis(500);
    opts
}

/// Run a two-path monitored fleet to completion on the given engine;
/// returns (per-path samples, shard count, events processed).
fn fleet_run(seed: u64, engine: SimEngine) -> (Vec<Vec<RangeSample>>, usize, u64) {
    let mut sim = Simulator::new(seed);
    let chains = build_disjoint_paths(&mut sim, &two_path_loads(), &small_opts());
    let specs = chains
        .into_iter()
        .enumerate()
        .map(|(i, chain)| SimPathSpec {
            label: format!("p{i}"),
            chain,
            cfg: SlopsConfig::default(),
        })
        .collect();
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(8),
        jitter: TimeNs::from_secs(1),
        max_concurrent: 0,
        seed: seed ^ 0x5eed,
    };
    let mut mon = SimFleetMonitor::with_engine(
        sim,
        specs,
        &sched,
        &SeriesConfig::default(),
        TimeNs::from_secs(18),
        engine,
    )
    .unwrap();
    mon.run_to_completion();
    let series = mon
        .series()
        .iter()
        .map(|s| s.samples().copied().collect::<Vec<_>>())
        .collect();
    let stats = mon.engine_stats();
    (series, mon.shards(), stats.events_processed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Seed sweep: the sharded fleet's monitoring series is bit-identical
    /// to the single-queue fleet's, seed by seed, and the engines even
    /// dispatch the exact same number of events.
    #[test]
    fn sharded_fleet_series_bit_identical(seed in 1u64..1_000_000) {
        let (single, shards_single, ev_single) = fleet_run(seed, SimEngine::SingleQueue);
        let (sharded, shards_auto, ev_auto) = fleet_run(seed, SimEngine::Auto);
        prop_assert_eq!(shards_single, 1);
        prop_assert_eq!(shards_auto, 2, "two disjoint chains must shard 1:1");
        prop_assert!(single.iter().all(|s| !s.is_empty()), "fleet measured nothing");
        prop_assert_eq!(single, sharded);
        prop_assert_eq!(ev_single, ev_auto, "same fleet, same events");
    }
}

/// One measurement session per path with a recording trace sink; returns
/// each path's trace stream and final `[low, high]` estimate.
#[allow(clippy::type_complexity)]
fn session_traces(seed: u64, shard: bool) -> (Vec<Vec<TraceEvent>>, Vec<(Rate, Rate)>) {
    let mut sim = Simulator::new(seed);
    let chains = build_disjoint_paths(&mut sim, &two_path_loads(), &small_opts());
    if shard {
        assert_eq!(sim.try_shard().unwrap(), 2);
    }
    let start = sim.now() + TimeNs::from_millis(10);
    let mut ids = Vec::new();
    let mut sinks = Vec::new();
    for chain in &chains {
        let id = install_session_at(&mut sim, chain, SlopsConfig::default(), start).unwrap();
        let sink = Arc::new(VecSink::new());
        sim.app_mut::<SessionApp>(id).set_trace_sink(sink.clone());
        ids.push(id);
        sinks.push(sink);
    }
    // Cross-traffic sources never idle, so run a fixed horizon.
    sim.run_until(start + TimeNs::from_secs(20));
    let estimates = ids
        .iter()
        .map(|&id| {
            let est = sim
                .app_mut::<SessionApp>(id)
                .take_estimate()
                .expect("session did not finish within the horizon");
            (est.low, est.high)
        })
        .collect();
    (sinks.iter().map(|s| s.take()).collect(), estimates)
}

/// The machine-minted trace streams — every phase transition, stream
/// verdict, and fleet verdict, in order — are bit-identical per path
/// between the engines, and so are the estimates.
#[test]
fn sharded_traces_bit_identical() {
    let (traces_single, est_single) = session_traces(42, false);
    let (traces_sharded, est_sharded) = session_traces(42, true);
    assert!(traces_single.iter().all(|t| !t.is_empty()));
    assert_eq!(traces_single, traces_sharded);
    assert_eq!(est_single, est_sharded);
}

/// A shared-tight-link fleet cannot shard: every forward path crosses the
/// tight link, so the planner sees one component, refuses, and the fleet
/// keeps running (correctly) on the single queue — with results identical
/// to an explicitly single-queue run.
#[test]
fn shared_tight_link_refuses_and_still_measures() {
    let run = |engine: SimEngine| {
        let mut sim = Simulator::new(7);
        let mut cfg = SharedTightLinkConfig::default();
        cfg.warmup = TimeNs::from_millis(500);
        let topo = shared_tight_link(&mut sim, &cfg);
        let specs = topo
            .chains
            .into_iter()
            .enumerate()
            .map(|(i, chain)| SimPathSpec {
                label: format!("p{i}"),
                chain,
                cfg: SlopsConfig::default(),
            })
            .collect();
        let sched = ScheduleConfig {
            period: TimeNs::from_secs(8),
            jitter: TimeNs::from_secs(1),
            max_concurrent: 1, // serialize: the paths interfere at `tight`
            seed: 3,
        };
        let mut mon = SimFleetMonitor::with_engine(
            sim,
            specs,
            &sched,
            &SeriesConfig::default(),
            TimeNs::from_secs(18),
            engine,
        )
        .unwrap();
        mon.run_to_completion();
        let refusal = mon.shard_refusal().cloned();
        let shards = mon.shards();
        let series: Vec<Vec<RangeSample>> = mon
            .series()
            .iter()
            .map(|s| s.samples().copied().collect())
            .collect();
        (refusal, shards, series)
    };
    let (refusal, shards, series) = run(SimEngine::Auto);
    assert_eq!(refusal, Some(ShardRefusal::SingleComponent));
    assert_eq!(shards, 1, "refusal must leave the single queue running");
    assert!(series.iter().all(|s| !s.is_empty()));
    let (_, _, series_single) = run(SimEngine::SingleQueue);
    assert_eq!(series, series_single);
}

/// Retiring a session mid-measurement drops its in-flight events from
/// whichever shard owns them: the engine stays sharded, never panics, and
/// the other path's session is untouched.
#[test]
fn remove_app_retires_events_from_its_shard() {
    let mut sim = Simulator::new(11);
    let chains = build_disjoint_paths(&mut sim, &two_path_loads(), &small_opts());
    assert_eq!(sim.try_shard().unwrap(), 2);
    let start = sim.now() + TimeNs::from_millis(10);
    let doomed = install_session_at(&mut sim, &chains[0], SlopsConfig::default(), start).unwrap();
    let kept = install_session_at(&mut sim, &chains[1], SlopsConfig::default(), start).unwrap();
    // Run into the measurement so probe packets and timers are in flight…
    sim.run_until(start + TimeNs::from_millis(50));
    // …then the session goes away with events still pending in its shard.
    sim.remove_app(doomed);
    sim.run_until(start + TimeNs::from_secs(20));
    assert_eq!(sim.shards(), 2, "retirement must not collapse the engine");
    assert!(
        sim.app_mut::<SessionApp>(kept).take_estimate().is_some(),
        "the surviving path's session must finish normally"
    );
}

/// The driver drains the engine counters into the telemetry registry:
/// totals match the simulator's own stats exactly, and the shard gauge
/// reports the partition.
#[test]
fn engine_counters_reach_the_registry() {
    let mut sim = Simulator::new(5);
    let chains = build_disjoint_paths(&mut sim, &two_path_loads(), &small_opts());
    let specs = chains
        .into_iter()
        .enumerate()
        .map(|(i, chain)| SimPathSpec {
            label: format!("p{i}"),
            chain,
            cfg: SlopsConfig::default(),
        })
        .collect();
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(8),
        jitter: TimeNs::from_secs(1),
        max_concurrent: 0,
        seed: 9,
    };
    let mut mon = SimFleetMonitor::new(
        sim,
        specs,
        &sched,
        &SeriesConfig::default(),
        TimeNs::from_secs(10),
    )
    .unwrap();
    let tele = FleetTelemetry::new();
    mon.attach_telemetry(&tele);
    mon.run_to_completion();
    let stats = mon.engine_stats();
    let reg = tele.registry();
    assert_eq!(
        reg.counter("sim_events_processed_total", &[]).get(),
        stats.events_processed
    );
    assert_eq!(
        reg.counter("sim_heap_ops_total", &[]).get(),
        stats.heap_ops()
    );
    assert_eq!(
        reg.counter("sim_front_hits_total", &[]).get(),
        stats.front_hits
    );
    assert_eq!(reg.gauge("sim_shards", &[]).get(), 2);
    assert!(reg.gauge("sim_heap_max_depth", &[]).get() > 0);
    assert!(stats.front_hits > 0, "the front slot must see traffic");
}
