//! The session-multiplexing receiver, end to end over loopback: N
//! concurrent senders on ONE control port and ONE shared UDP probe
//! socket, demuxed by the session token minted at `Hello`.
//!
//! Alongside the full-session tests there are wire-level injection tests
//! driven by a hand-rolled control client: they feed the receiver
//! duplicated, reordered, truncated, and stale-session datagrams and pin
//! the collection semantics directly (de-duplication on index, no stall
//! on a lost final packet, stale tokens dropped).

use availbw::pathload_net::proto::{CtrlMsg, ProbeKind, ProbePacket, PROTO_VERSION};
use availbw::pathload_net::{Receiver, SocketTransport};
use availbw::slops::{stream_params, Estimate, ProbeTransport, Session, SlopsConfig};
use availbw::units::{Rate, TimeNs};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::thread;
use std::time::{Duration, Instant};

const RATE_CAP_MBPS: f64 = 40.0;

fn gentle_cfg() -> SlopsConfig {
    let mut cfg = SlopsConfig::default();
    cfg.stream_len = 30;
    cfg.fleet_len = 4;
    cfg.min_period = TimeNs::from_millis(1);
    cfg.resolution = Rate::from_mbps(8.0);
    cfg.grey_resolution = Rate::from_mbps(16.0);
    cfg.max_fleets = 6;
    cfg
}

fn run_session(addr: SocketAddr) -> Estimate {
    let mut t = SocketTransport::connect(addr).unwrap();
    t.rate_cap = Rate::from_mbps(RATE_CAP_MBPS);
    Session::new(gentle_cfg()).run(&mut t).expect("session")
}

fn assert_sane(est: &Estimate, what: &str) {
    assert!(est.low.bps() <= est.high.bps(), "{what}: low > high");
    assert!(!est.fleets.is_empty(), "{what}: empty fleet trace");
    assert!(
        est.high.mbps() <= RATE_CAP_MBPS + 8.0,
        "{what}: estimate above the pacing cap: {}",
        est.high
    );
}

/// Two senders measuring **concurrently through one shared receiver**
/// complete with the same sane estimates as two senders on dedicated
/// receivers. Real sockets are nondeterministic, so the comparison is
/// structural (both setups complete, converge, and respect the cap) —
/// the same standard `tests/socket_loopback.rs` applies to one session.
#[test]
fn concurrent_sessions_on_shared_receiver_match_dedicated_receivers() {
    // Shared: one receiver, two concurrent sessions.
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(2));
    let a = thread::spawn(move || run_session(addr));
    let b = thread::spawn(move || run_session(addr));
    let shared = [a.join().unwrap(), b.join().unwrap()];
    server.join().unwrap().unwrap();

    // Dedicated: one receiver per sender, also concurrent.
    let mut servers = Vec::new();
    let mut sessions = Vec::new();
    for _ in 0..2 {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = rx.ctrl_addr();
        servers.push(thread::spawn(move || rx.serve_one()));
        sessions.push(thread::spawn(move || run_session(addr)));
    }
    let dedicated: Vec<Estimate> = sessions.into_iter().map(|s| s.join().unwrap()).collect();
    for h in servers {
        h.join().unwrap().unwrap();
    }

    for (i, est) in shared.iter().enumerate() {
        assert_sane(est, &format!("shared session {i}"));
    }
    for (i, est) in dedicated.iter().enumerate() {
        assert_sane(est, &format!("dedicated session {i}"));
    }
}

/// A probe stream and a probe train from *different sessions*, in flight
/// at the same time through the shared UDP socket, do not contaminate
/// each other's collections — even though both use id 0 (each transport
/// numbers its own streams).
#[test]
fn interleaved_stream_and_train_do_not_cross_contaminate() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(2));

    let mut ta = SocketTransport::connect(addr).unwrap();
    let mut tb = SocketTransport::connect(addr).unwrap();
    assert_ne!(
        ta.session(),
        tb.session(),
        "sessions must get unique tokens"
    );

    let cfg = gentle_cfg();
    let req = stream_params(Rate::from_mbps(1.6), 0, &cfg); // 200 B @ 1 ms
    let count = req.count;
    let a = thread::spawn(move || {
        let rec = ta.send_stream(&req).unwrap();
        drop(ta);
        rec
    });
    let b = thread::spawn(move || {
        let rec = tb.send_train(60, 600).unwrap();
        drop(tb);
        rec
    });
    let stream = a.join().unwrap();
    let train = b.join().unwrap();
    server.join().unwrap().unwrap();

    // The stream collection saw only its own packets: no index outside
    // the stream, no duplicates, and nearly everything arrived.
    assert_eq!(stream.sent, count);
    assert!(
        stream.samples.len() as u32 <= count,
        "stream over-collected: {} > {count}",
        stream.samples.len()
    );
    assert!(
        stream.samples.len() as u32 >= count - 5,
        "stream lost too much on loopback: {}/{count}",
        stream.samples.len()
    );
    let mut idxs: Vec<u32> = stream.samples.iter().map(|s| s.idx).collect();
    idxs.sort_unstable();
    idxs.dedup();
    assert_eq!(idxs.len(), stream.samples.len(), "duplicate stream indices");
    assert!(idxs.iter().all(|&i| i < count), "foreign index collected");

    // The train counted only its own packets.
    assert!(
        train.received <= 60,
        "train over-counted: {}",
        train.received
    );
    assert!(
        train.received >= 55,
        "train lost too much: {}",
        train.received
    );
}

/// A hand-rolled control client: speaks just enough of the wire protocol
/// to announce streams and inject exactly the datagrams a test wants.
struct RawClient {
    ctrl: TcpStream,
    udp: UdpSocket,
    session: u64,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> RawClient {
        let mut ctrl = TcpStream::connect(addr).unwrap();
        ctrl.set_nodelay(true).unwrap();
        ctrl.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let (udp_port, session) = match CtrlMsg::read_from(&mut ctrl).unwrap() {
            CtrlMsg::Hello {
                version,
                udp_port,
                session,
            } => {
                assert_eq!(version, PROTO_VERSION);
                (udp_port, session)
            }
            other => panic!("expected Hello, got {other:?}"),
        };
        let mut peer = addr;
        peer.set_port(udp_port);
        let udp = UdpSocket::bind("127.0.0.1:0").unwrap();
        udp.connect(peer).unwrap();
        RawClient { ctrl, udp, session }
    }

    /// Announce a stream and wait for `Ready`.
    fn announce_stream(&mut self, id: u32, count: u32, period_ns: u64) {
        CtrlMsg::StreamAnnounce {
            id,
            count,
            period_ns,
            size: 64,
        }
        .write_to(&mut self.ctrl)
        .unwrap();
        match CtrlMsg::read_from(&mut self.ctrl).unwrap() {
            CtrlMsg::Ready { id: got } => assert_eq!(got, id),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    /// Send one probe datagram with an arbitrary (possibly stale) token.
    fn send_probe(&self, session: u64, id: u32, idx: u32, send_ns: u64) {
        let mut buf = [0u8; 64];
        ProbePacket {
            session,
            kind: ProbeKind::Stream,
            id,
            idx,
            send_ns,
        }
        .encode(&mut buf);
        self.udp.send(&buf).unwrap();
    }

    fn read_report(&mut self, id: u32) -> Vec<availbw::pathload_net::proto::SampleWire> {
        match CtrlMsg::read_from(&mut self.ctrl).unwrap() {
            CtrlMsg::StreamReport { id: got, samples } => {
                assert_eq!(got, id);
                samples
            }
            other => panic!("expected StreamReport, got {other:?}"),
        }
    }

    fn bye(mut self) {
        let _ = CtrlMsg::Bye.write_to(&mut self.ctrl);
    }
}

/// Duplicated and reordered datagrams are collected once each, and a
/// stream missing packets (including a hole in the middle) terminates
/// after a short silence window instead of stalling for the multi-second
/// deadline — the regression test for the seed's double-count/stall bug
/// cluster in `collect_stream`.
#[test]
fn duplicate_datagrams_are_deduplicated_and_losses_do_not_stall() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(1));

    let mut client = RawClient::connect(addr);
    const ID: u32 = 9;
    const COUNT: u32 = 20;
    const PERIOD_NS: u64 = 2_000_000; // 2 ms → 40 ms nominal duration
    client.announce_stream(ID, COUNT, PERIOD_NS);

    // Indices 0..20 with idx 7 lost, mildly reordered (the tail arrives
    // before its predecessors), and EVERY datagram sent twice. The seed
    // receiver double-counted the duplicates (19 distinct arrivals looked
    // like 38 >= 20, terminating "complete" with idx 7 missing) — and
    // with the last *appended* packet not being idx 19, a lost tail made
    // it block out the whole 3 s+ deadline.
    let sent: Vec<u32> = (0..15).chain([19, 18, 17, 16, 15]).collect();
    for &idx in &sent {
        if idx == 7 {
            continue; // lost in the network
        }
        client.send_probe(client.session, ID, idx, 1_000 + idx as u64);
        client.send_probe(client.session, ID, idx, 1_000 + idx as u64); // duplicate
    }
    let waited = Instant::now();
    let samples = client.read_report(ID);
    let elapsed = waited.elapsed();

    // Every index exactly once, idx 7 really missing, send_ns preserved.
    let mut idxs: Vec<u32> = samples.iter().map(|s| s.idx).collect();
    idxs.sort_unstable();
    let expected: Vec<u32> = (0..COUNT).filter(|&i| i != 7).collect();
    assert_eq!(
        idxs, expected,
        "collection must be distinct indices minus the loss"
    );
    for s in &samples {
        assert_eq!(
            s.send_ns,
            1_000 + s.idx as u64,
            "sample carries wrong send_ns"
        );
    }
    // And it terminated on the silence window, not the 3 s+ deadline.
    assert!(
        elapsed < Duration::from_millis(1_500),
        "collection stalled for {elapsed:?} on a lossy stream"
    );

    client.bye();
    server.join().unwrap().unwrap();
}

/// Token recycling across receiver **restarts**: a restarted receiver
/// mints tokens from a fresh random 64-bit base, so a token issued by the
/// previous incarnation is (with overwhelming probability) never live on
/// the new one. Probes a sender still stamps with its pre-restart token
/// are silently dropped by the restarted receiver's demux — they can
/// never contaminate the new incarnation's sessions — while the sender's
/// *reconnect* performs a fresh `Hello` and gets a live token that
/// collects normally.
#[test]
fn receiver_restart_invalidates_pre_restart_tokens() {
    // Incarnation 1 issues a token, then goes away entirely.
    let stale = {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = rx.ctrl_addr();
        let server = thread::spawn(move || rx.serve_n(1));
        let client = RawClient::connect(addr);
        let stale = client.session;
        client.bye();
        server.join().unwrap().unwrap();
        stale
    };

    // Incarnation 2 ("the restart"): the reconnecting sender's fresh
    // Hello mints a token from the new random base.
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(1));
    let mut client = RawClient::connect(addr);
    assert_ne!(
        client.session, stale,
        "restarted receiver re-minted a pre-restart token"
    );

    const ID: u32 = 5;
    const COUNT: u32 = 10;
    const BOGUS_NS: u64 = 0xDEAD_0000;
    client.announce_stream(ID, COUNT, 1_000_000);
    for idx in 0..COUNT {
        // The pre-restart token, poisoned so collection would be visible.
        client.send_probe(stale, ID, idx, BOGUS_NS);
        // The live post-restart token.
        client.send_probe(client.session, ID, idx, 1_000 + idx as u64);
    }
    let samples = client.read_report(ID);
    assert_eq!(samples.len() as u32, COUNT);
    for s in &samples {
        assert_eq!(
            s.send_ns,
            1_000 + s.idx as u64,
            "a pre-restart-token datagram was collected: idx {} carries {:#x}",
            s.idx,
            s.send_ns
        );
    }
    client.bye();
    server.join().unwrap().unwrap();
}

/// Receiver restart, sender side: a transport whose receiver died
/// mid-session must fail with a **clean control-channel error** that
/// names the situation and the recovery (reconnect → fresh `Hello` and
/// token) — not an opaque read failure, and never silently-empty stream
/// reports.
#[test]
fn dead_receiver_mid_session_yields_a_clean_restart_error() {
    use availbw::slops::stream_params;

    // A hand-rolled "receiver" that speaks a valid v2 Hello and then
    // crashes (drops the connection) on the first announce — exactly what
    // a sender observes across a receiver restart.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let udp = UdpSocket::bind("127.0.0.1:0").unwrap();
    let udp_port = udp.local_addr().unwrap().port();
    let server = thread::spawn(move || {
        let (mut ctrl, _) = listener.accept().unwrap();
        CtrlMsg::Hello {
            version: PROTO_VERSION,
            udp_port,
            session: 42,
        }
        .write_to(&mut ctrl)
        .unwrap();
        // Read the announce, then die without replying.
        let _ = CtrlMsg::read_from(&mut ctrl).unwrap();
    });

    let mut t = SocketTransport::connect(addr).unwrap();
    let req = stream_params(Rate::from_mbps(1.6), 0, &gentle_cfg());
    let err = t.send_stream(&req).expect_err("the receiver is gone");
    let msg = format!("{err:?}");
    assert!(
        msg.contains("restarted"),
        "control-channel death must diagnose a possible restart: {msg}"
    );
    assert!(
        msg.contains("Hello"),
        "the error must name the recovery (reconnect for a fresh Hello): {msg}"
    );
    server.join().unwrap();
}

/// Probe datagrams carrying a stale token (a finished session's) or a
/// never-issued token are dropped by the demux, not collected into a live
/// session — even when id, kind, and indices match the live stream.
#[test]
fn stale_session_probe_packets_are_dropped() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(2));

    // Session 1 connects and leaves: its token is now stale.
    let t1 = SocketTransport::connect(addr).unwrap();
    let stale = t1.session();
    drop(t1);
    thread::sleep(Duration::from_millis(100)); // let the receiver deregister it

    let mut client = RawClient::connect(addr);
    assert_ne!(client.session, stale);
    const ID: u32 = 3;
    const COUNT: u32 = 10;
    const BOGUS_NS: u64 = 0xBAD0_BAD0;
    client.announce_stream(ID, COUNT, 1_000_000);
    for idx in 0..COUNT {
        // Same id/kind/idx as the live stream, wrong (stale/unknown)
        // token, poisoned send_ns so collection would be visible.
        client.send_probe(stale, ID, idx, BOGUS_NS);
        client.send_probe(u64::MAX, ID, idx, BOGUS_NS);
        client.send_probe(client.session, ID, idx, 1_000 + idx as u64);
    }
    let samples = client.read_report(ID);
    assert_eq!(samples.len() as u32, COUNT);
    for s in &samples {
        assert_eq!(
            s.send_ns,
            1_000 + s.idx as u64,
            "a stale-session datagram was collected: idx {} carries {:#x}",
            s.idx,
            s.send_ns
        );
    }

    client.bye();
    server.join().unwrap().unwrap();
}
