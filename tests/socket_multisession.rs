//! The session-multiplexing receiver, end to end over loopback: N
//! concurrent senders on ONE control port and ONE shared UDP probe
//! socket, demuxed by the session token minted at `Hello`.
//!
//! Alongside the full-session tests there are wire-level injection tests
//! driven by a hand-rolled control client: they feed the receiver
//! duplicated, reordered, truncated, and stale-session datagrams and pin
//! the collection semantics directly (de-duplication on index, no stall
//! on a lost final packet, stale tokens dropped).

#[cfg(target_os = "linux")]
use availbw::monitord::{
    run_socket_fleet_async, FleetEvent, ScheduleConfig, SeriesConfig, SocketPathSpec,
};
use availbw::pathload_net::proto::{CtrlMsg, ProbeKind, ProbePacket, PROTO_VERSION};
#[cfg(target_os = "linux")]
use availbw::pathload_net::EventedReceiver;
use availbw::pathload_net::{Receiver, SocketTransport};
use availbw::slops::{stream_params, Estimate, ProbeTransport, Session, SlopsConfig};
use availbw::units::{Rate, TimeNs};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::thread;
use std::time::{Duration, Instant};

const RATE_CAP_MBPS: f64 = 40.0;

fn gentle_cfg() -> SlopsConfig {
    let mut cfg = SlopsConfig::default();
    cfg.stream_len = 30;
    cfg.fleet_len = 4;
    cfg.min_period = TimeNs::from_millis(1);
    cfg.resolution = Rate::from_mbps(8.0);
    cfg.grey_resolution = Rate::from_mbps(16.0);
    cfg.max_fleets = 6;
    cfg
}

fn run_session(addr: SocketAddr) -> Estimate {
    let mut t = SocketTransport::connect(addr).unwrap();
    t.rate_cap = Rate::from_mbps(RATE_CAP_MBPS);
    Session::new(gentle_cfg()).run(&mut t).expect("session")
}

fn assert_sane(est: &Estimate, what: &str) {
    assert!(est.low.bps() <= est.high.bps(), "{what}: low > high");
    assert!(!est.fleets.is_empty(), "{what}: empty fleet trace");
    assert!(
        est.high.mbps() <= RATE_CAP_MBPS + 8.0,
        "{what}: estimate above the pacing cap: {}",
        est.high
    );
}

/// Two senders measuring **concurrently through one shared receiver**
/// complete with the same sane estimates as two senders on dedicated
/// receivers. Real sockets are nondeterministic, so the comparison is
/// structural (both setups complete, converge, and respect the cap) —
/// the same standard `tests/socket_loopback.rs` applies to one session.
#[test]
fn concurrent_sessions_on_shared_receiver_match_dedicated_receivers() {
    // Shared: one receiver, two concurrent sessions.
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(2));
    let a = thread::spawn(move || run_session(addr));
    let b = thread::spawn(move || run_session(addr));
    let shared = [a.join().unwrap(), b.join().unwrap()];
    server.join().unwrap().unwrap();

    // Dedicated: one receiver per sender, also concurrent.
    let mut servers = Vec::new();
    let mut sessions = Vec::new();
    for _ in 0..2 {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = rx.ctrl_addr();
        servers.push(thread::spawn(move || rx.serve_one()));
        sessions.push(thread::spawn(move || run_session(addr)));
    }
    let dedicated: Vec<Estimate> = sessions.into_iter().map(|s| s.join().unwrap()).collect();
    for h in servers {
        h.join().unwrap().unwrap();
    }

    for (i, est) in shared.iter().enumerate() {
        assert_sane(est, &format!("shared session {i}"));
    }
    for (i, est) in dedicated.iter().enumerate() {
        assert_sane(est, &format!("dedicated session {i}"));
    }
}

/// A probe stream and a probe train from *different sessions*, in flight
/// at the same time through the shared UDP socket, do not contaminate
/// each other's collections — even though both use id 0 (each transport
/// numbers its own streams).
#[test]
fn interleaved_stream_and_train_do_not_cross_contaminate() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(2));

    let mut ta = SocketTransport::connect(addr).unwrap();
    let mut tb = SocketTransport::connect(addr).unwrap();
    assert_ne!(
        ta.session(),
        tb.session(),
        "sessions must get unique tokens"
    );

    let cfg = gentle_cfg();
    let req = stream_params(Rate::from_mbps(1.6), 0, &cfg); // 200 B @ 1 ms
    let count = req.count;
    let a = thread::spawn(move || {
        let rec = ta.send_stream(&req).unwrap();
        drop(ta);
        rec
    });
    let b = thread::spawn(move || {
        let rec = tb.send_train(60, 600).unwrap();
        drop(tb);
        rec
    });
    let stream = a.join().unwrap();
    let train = b.join().unwrap();
    server.join().unwrap().unwrap();

    // The stream collection saw only its own packets: no index outside
    // the stream, no duplicates, and nearly everything arrived.
    assert_eq!(stream.sent, count);
    assert!(
        stream.samples.len() as u32 <= count,
        "stream over-collected: {} > {count}",
        stream.samples.len()
    );
    assert!(
        stream.samples.len() as u32 >= count - 5,
        "stream lost too much on loopback: {}/{count}",
        stream.samples.len()
    );
    let mut idxs: Vec<u32> = stream.samples.iter().map(|s| s.idx).collect();
    idxs.sort_unstable();
    idxs.dedup();
    assert_eq!(idxs.len(), stream.samples.len(), "duplicate stream indices");
    assert!(idxs.iter().all(|&i| i < count), "foreign index collected");

    // The train counted only its own packets.
    assert!(
        train.received <= 60,
        "train over-counted: {}",
        train.received
    );
    assert!(
        train.received >= 55,
        "train lost too much: {}",
        train.received
    );
}

/// A hand-rolled control client: speaks just enough of the wire protocol
/// to announce streams and inject exactly the datagrams a test wants.
struct RawClient {
    ctrl: TcpStream,
    udp: UdpSocket,
    session: u64,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> RawClient {
        let mut ctrl = TcpStream::connect(addr).unwrap();
        ctrl.set_nodelay(true).unwrap();
        ctrl.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let (udp_port, session) = match CtrlMsg::read_from(&mut ctrl).unwrap() {
            CtrlMsg::Hello {
                version,
                udp_port,
                session,
            } => {
                assert_eq!(version, PROTO_VERSION);
                (udp_port, session)
            }
            other => panic!("expected Hello, got {other:?}"),
        };
        let mut peer = addr;
        peer.set_port(udp_port);
        let udp = UdpSocket::bind("127.0.0.1:0").unwrap();
        udp.connect(peer).unwrap();
        RawClient { ctrl, udp, session }
    }

    /// Announce a stream and wait for `Ready`.
    fn announce_stream(&mut self, id: u32, count: u32, period_ns: u64) {
        CtrlMsg::StreamAnnounce {
            id,
            count,
            period_ns,
            size: 64,
        }
        .write_to(&mut self.ctrl)
        .unwrap();
        match CtrlMsg::read_from(&mut self.ctrl).unwrap() {
            CtrlMsg::Ready { id: got } => assert_eq!(got, id),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    /// Send one probe datagram with an arbitrary (possibly stale) token.
    fn send_probe(&self, session: u64, id: u32, idx: u32, send_ns: u64) {
        let mut buf = [0u8; 64];
        ProbePacket {
            session,
            kind: ProbeKind::Stream,
            id,
            idx,
            send_ns,
        }
        .encode(&mut buf);
        self.udp.send(&buf).unwrap();
    }

    fn read_report(&mut self, id: u32) -> Vec<availbw::pathload_net::proto::SampleWire> {
        match CtrlMsg::read_from(&mut self.ctrl).unwrap() {
            CtrlMsg::StreamReport { id: got, samples } => {
                assert_eq!(got, id);
                samples
            }
            other => panic!("expected StreamReport, got {other:?}"),
        }
    }

    fn bye(mut self) {
        let _ = CtrlMsg::Bye.write_to(&mut self.ctrl);
    }
}

/// The duplicate/reorder/loss injection scenario, against whichever
/// receiver listens on `addr`: duplicated and reordered datagrams are
/// collected once each, and a stream missing packets (including a hole
/// in the middle) terminates after a short silence window instead of
/// stalling for the multi-second deadline.
fn dedup_case(addr: SocketAddr) {
    let mut client = RawClient::connect(addr);
    const ID: u32 = 9;
    const COUNT: u32 = 20;
    const PERIOD_NS: u64 = 2_000_000; // 2 ms → 40 ms nominal duration
    client.announce_stream(ID, COUNT, PERIOD_NS);

    // Indices 0..20 with idx 7 lost, mildly reordered (the tail arrives
    // before its predecessors), and EVERY datagram sent twice. The seed
    // receiver double-counted the duplicates (19 distinct arrivals looked
    // like 38 >= 20, terminating "complete" with idx 7 missing) — and
    // with the last *appended* packet not being idx 19, a lost tail made
    // it block out the whole 3 s+ deadline.
    let sent: Vec<u32> = (0..15).chain([19, 18, 17, 16, 15]).collect();
    for &idx in &sent {
        if idx == 7 {
            continue; // lost in the network
        }
        client.send_probe(client.session, ID, idx, 1_000 + idx as u64);
        client.send_probe(client.session, ID, idx, 1_000 + idx as u64); // duplicate
    }
    let waited = Instant::now();
    let samples = client.read_report(ID);
    let elapsed = waited.elapsed();

    // Every index exactly once, idx 7 really missing, send_ns preserved.
    let mut idxs: Vec<u32> = samples.iter().map(|s| s.idx).collect();
    idxs.sort_unstable();
    let expected: Vec<u32> = (0..COUNT).filter(|&i| i != 7).collect();
    assert_eq!(
        idxs, expected,
        "collection must be distinct indices minus the loss"
    );
    for s in &samples {
        assert_eq!(
            s.send_ns,
            1_000 + s.idx as u64,
            "sample carries wrong send_ns"
        );
    }
    // And it terminated on the silence window, not the 3 s+ deadline.
    assert!(
        elapsed < Duration::from_millis(1_500),
        "collection stalled for {elapsed:?} on a lossy stream"
    );

    client.bye();
}

/// Duplicated and reordered datagrams are collected once each, and a
/// stream missing packets (including a hole in the middle) terminates
/// after a short silence window instead of stalling for the multi-second
/// deadline — the regression test for the seed's double-count/stall bug
/// cluster in `collect_stream`.
#[test]
fn duplicate_datagrams_are_deduplicated_and_losses_do_not_stall() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(1));
    dedup_case(addr);
    server.join().unwrap().unwrap();
}

/// The same injected byte sequence against the **evented** receiver's
/// inline demux: identical dedup, loss-tolerance, and silence-window
/// semantics.
#[cfg(target_os = "linux")]
#[test]
fn evented_receiver_deduplicates_and_does_not_stall() {
    let rx = EventedReceiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let handle = rx.spawn();
    dedup_case(handle.ctrl_addr());
    handle.stop().unwrap();
}

/// Token recycling across receiver **restarts**: a restarted receiver
/// mints tokens from a fresh random 64-bit base, so a token issued by the
/// previous incarnation is (with overwhelming probability) never live on
/// the new one. Probes a sender still stamps with its pre-restart token
/// are silently dropped by the restarted receiver's demux — they can
/// never contaminate the new incarnation's sessions — while the sender's
/// *reconnect* performs a fresh `Hello` and gets a live token that
/// collects normally.
#[test]
fn receiver_restart_invalidates_pre_restart_tokens() {
    // Incarnation 1 issues a token, then goes away entirely.
    let stale = {
        let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = rx.ctrl_addr();
        let server = thread::spawn(move || rx.serve_n(1));
        let client = RawClient::connect(addr);
        let stale = client.session;
        client.bye();
        server.join().unwrap().unwrap();
        stale
    };

    // Incarnation 2 ("the restart"): the reconnecting sender's fresh
    // Hello mints a token from the new random base.
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(1));
    let mut client = RawClient::connect(addr);
    assert_ne!(
        client.session, stale,
        "restarted receiver re-minted a pre-restart token"
    );

    const ID: u32 = 5;
    const COUNT: u32 = 10;
    const BOGUS_NS: u64 = 0xDEAD_0000;
    client.announce_stream(ID, COUNT, 1_000_000);
    for idx in 0..COUNT {
        // The pre-restart token, poisoned so collection would be visible.
        client.send_probe(stale, ID, idx, BOGUS_NS);
        // The live post-restart token.
        client.send_probe(client.session, ID, idx, 1_000 + idx as u64);
    }
    let samples = client.read_report(ID);
    assert_eq!(samples.len() as u32, COUNT);
    for s in &samples {
        assert_eq!(
            s.send_ns,
            1_000 + s.idx as u64,
            "a pre-restart-token datagram was collected: idx {} carries {:#x}",
            s.idx,
            s.send_ns
        );
    }
    client.bye();
    server.join().unwrap().unwrap();
}

/// Receiver restart, sender side: a transport whose receiver died
/// mid-session must fail with a **clean control-channel error** that
/// names the situation and the recovery (reconnect → fresh `Hello` and
/// token) — not an opaque read failure, and never silently-empty stream
/// reports.
#[test]
fn dead_receiver_mid_session_yields_a_clean_restart_error() {
    use availbw::slops::stream_params;

    // A hand-rolled "receiver" that speaks a valid v2 Hello and then
    // crashes (drops the connection) on the first announce — exactly what
    // a sender observes across a receiver restart.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let udp = UdpSocket::bind("127.0.0.1:0").unwrap();
    let udp_port = udp.local_addr().unwrap().port();
    let server = thread::spawn(move || {
        let (mut ctrl, _) = listener.accept().unwrap();
        CtrlMsg::Hello {
            version: PROTO_VERSION,
            udp_port,
            session: 42,
        }
        .write_to(&mut ctrl)
        .unwrap();
        // Read the announce, then die without replying.
        let _ = CtrlMsg::read_from(&mut ctrl).unwrap();
    });

    let mut t = SocketTransport::connect(addr).unwrap();
    let req = stream_params(Rate::from_mbps(1.6), 0, &gentle_cfg());
    let err = t.send_stream(&req).expect_err("the receiver is gone");
    let msg = format!("{err:?}");
    assert!(
        msg.contains("restarted"),
        "control-channel death must diagnose a possible restart: {msg}"
    );
    assert!(
        msg.contains("Hello"),
        "the error must name the recovery (reconnect for a fresh Hello): {msg}"
    );
    server.join().unwrap();
}

/// The stale-token injection scenario, against whichever receiver
/// listens on `addr`: datagrams carrying a finished session's token or a
/// never-issued token are dropped by the demux, never collected into a
/// live session.
fn stale_case(addr: SocketAddr) {
    // Session 1 connects and leaves: its token is now stale.
    let t1 = SocketTransport::connect(addr).unwrap();
    let stale = t1.session();
    drop(t1);
    thread::sleep(Duration::from_millis(100)); // let the receiver deregister it

    let mut client = RawClient::connect(addr);
    assert_ne!(client.session, stale);
    const ID: u32 = 3;
    const COUNT: u32 = 10;
    const BOGUS_NS: u64 = 0xBAD0_BAD0;
    client.announce_stream(ID, COUNT, 1_000_000);
    for idx in 0..COUNT {
        // Same id/kind/idx as the live stream, wrong (stale/unknown)
        // token, poisoned send_ns so collection would be visible.
        client.send_probe(stale, ID, idx, BOGUS_NS);
        client.send_probe(u64::MAX, ID, idx, BOGUS_NS);
        client.send_probe(client.session, ID, idx, 1_000 + idx as u64);
    }
    let samples = client.read_report(ID);
    assert_eq!(samples.len() as u32, COUNT);
    for s in &samples {
        assert_eq!(
            s.send_ns,
            1_000 + s.idx as u64,
            "a stale-session datagram was collected: idx {} carries {:#x}",
            s.idx,
            s.send_ns
        );
    }

    client.bye();
}

/// Probe datagrams carrying a stale token (a finished session's) or a
/// never-issued token are dropped by the demux, not collected into a live
/// session — even when id, kind, and indices match the live stream.
#[test]
fn stale_session_probe_packets_are_dropped() {
    let rx = Receiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let addr = rx.ctrl_addr();
    let server = thread::spawn(move || rx.serve_n(2));
    stale_case(addr);
    server.join().unwrap().unwrap();
}

/// The same stale-token injection against the **evented** receiver's
/// inline demux: unknown tokens never reach a live collection.
#[cfg(target_os = "linux")]
#[test]
fn evented_receiver_drops_stale_session_probe_packets() {
    let rx = EventedReceiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let handle = rx.spawn();
    stale_case(handle.ctrl_addr());
    handle.stop().unwrap();
}

/// One batching-correctness run: an evented receiver pinned to either
/// the scalar or the `recvmmsg` receive path, fed a fixed injected
/// sequence (per index: one unknown-token datagram, the real packet, a
/// duplicate). Returns the collected `(idx, send_ns)` pairs and every
/// `receiver_demux_*` counter.
#[cfg(target_os = "linux")]
#[allow(clippy::type_complexity)]
fn batching_run(scalar: bool) -> (Vec<(u32, u64)>, Vec<(String, u64)>) {
    let reg = availbw::telemetry::Registry::new();
    let rx = EventedReceiver::bind("127.0.0.1:0".parse().unwrap())
        .unwrap()
        .with_scalar_recv(scalar);
    rx.register_metrics(&reg);
    let handle = rx.spawn();
    let mut client = RawClient::connect(handle.ctrl_addr());
    const ID: u32 = 12;
    const COUNT: u32 = 24;
    client.announce_stream(ID, COUNT, 1_000_000);
    let unknown = client.session.wrapping_add(0x5AA5);
    for idx in 0..COUNT {
        client.send_probe(unknown, ID, idx, 0xBAD);
        client.send_probe(client.session, ID, idx, 1_000 + idx as u64);
        client.send_probe(client.session, ID, idx, 1_000 + idx as u64); // duplicate
    }
    let samples = client.read_report(ID);
    client.bye();
    // The duplicate of the final (completing) index lands after the
    // report is queued; give it time to be counted before scraping.
    thread::sleep(Duration::from_millis(200));
    let text = reg.render_prometheus();
    handle.stop().unwrap();
    let mut counters: Vec<(String, u64)> = text
        .lines()
        .filter(|l| !l.starts_with('#') && l.starts_with("receiver_demux_"))
        .map(|l| {
            let (key, value) = l.rsplit_once(' ').expect("metric line has a value");
            (key.to_string(), value.parse().expect("counter value"))
        })
        .collect();
    counters.sort();
    let mut collected: Vec<(u32, u64)> = samples.iter().map(|s| (s.idx, s.send_ns)).collect();
    collected.sort_unstable();
    (collected, counters)
}

/// **Batching correctness:** the `recvmmsg` path and the scalar fallback
/// route a byte-identical injected sequence — unknown tokens, in-order
/// packets, duplicates, including a duplicate arriving after the
/// collection completed — to identical per-session collections and
/// identical `receiver_demux_*` counters, with the absolute values
/// pinned: 48 routed (24 real + 24 duplicates), 24 unknown-token drops,
/// 23 dedup drops (the final index's duplicate lands post-completion and
/// is discarded by the idle session, not the dedup check).
#[cfg(target_os = "linux")]
#[test]
fn batched_and_scalar_datapaths_route_identically() {
    let (scalar_samples, scalar_counters) = batching_run(true);
    let (batched_samples, batched_counters) = batching_run(false);
    assert_eq!(
        scalar_samples, batched_samples,
        "the two receive paths collected different samples"
    );
    assert_eq!(
        scalar_counters, batched_counters,
        "the two receive paths counted differently"
    );
    let expected: Vec<(u32, u64)> = (0..24).map(|i| (i, 1_000 + i as u64)).collect();
    assert_eq!(scalar_samples, expected, "wrong collection");
    let value = |needle: &str| {
        scalar_counters
            .iter()
            .find(|(k, _)| k.contains(needle))
            .unwrap_or_else(|| panic!("no {needle} counter"))
            .1
    };
    assert_eq!(value("routed_total"), 48);
    assert_eq!(value("unknown_token"), 24);
    assert_eq!(value("dedup"), 23);
}

/// **Fault injection, whole-fleet:** kill and restart a receiver while an
/// async-driver fleet is mid-run. The path pointed at the restarted
/// receiver loses its session (counted as measurement errors), re-dials
/// at its next scheduled start — fresh `Hello`, fresh token, no operator
/// action — and completes more samples afterwards. A path pointed at a
/// receiver that stays up never notices.
#[cfg(target_os = "linux")]
#[test]
fn receiver_restart_mid_fleet_redials_at_the_next_scheduled_start() {
    let gentle = {
        let mut cfg = SlopsConfig::default();
        cfg.stream_len = 20;
        cfg.fleet_len = 3;
        cfg.min_period = TimeNs::from_millis(1);
        cfg.resolution = Rate::from_mbps(10.0);
        cfg.grey_resolution = Rate::from_mbps(20.0);
        cfg.max_fleets = 4;
        cfg
    };
    // Receiver A will be killed and rebound on the SAME address
    // (SO_REUSEADDR carries it through TIME_WAIT); receiver B stays up.
    let rx_a = EventedReceiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let handle_a = rx_a.spawn();
    let addr_a = handle_a.ctrl_addr();
    let rx_b = EventedReceiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    let handle_b = rx_b.spawn();
    let addr_b = handle_b.ctrl_addr();

    // The saboteur: on signal, stop A and bring up a fresh incarnation on
    // the same address — a daemon restart as the fleet sees it.
    let (signal, armed) = std::sync::mpsc::channel::<()>();
    let saboteur = thread::spawn(move || {
        armed.recv().expect("restart signal");
        handle_a.stop().expect("receiver A stops cleanly");
        let rx = EventedReceiver::bind(addr_a).expect("rebind through TIME_WAIT");
        rx.spawn()
    });

    let specs = vec![
        SocketPathSpec {
            label: "restarted".into(),
            ctrl_addr: addr_a,
            cfg: gentle.clone(),
            rate_cap: Some(Rate::from_mbps(RATE_CAP_MBPS)),
        },
        SocketPathSpec {
            label: "stable".into(),
            ctrl_addr: addr_b,
            cfg: gentle,
            rate_cap: Some(Rate::from_mbps(RATE_CAP_MBPS)),
        },
    ];
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(2),
        jitter: TimeNs::ZERO,
        max_concurrent: 2,
        seed: 11,
    };
    let mut signalled = false;
    let series = run_socket_fleet_async(
        specs,
        &sched,
        &SeriesConfig::default(),
        TimeNs::from_secs(12),
        |ev| {
            // The moment path 0 lands its first sample, pull receiver A
            // out from under it.
            if let FleetEvent::Sample { path: 0, .. } = ev {
                if !signalled {
                    signalled = true;
                    signal.send(()).expect("saboteur alive");
                }
            }
        },
    )
    .unwrap();
    let handle_a2 = saboteur.join().expect("saboteur thread");

    assert!(signalled, "path 0 never landed its pre-restart sample");
    assert!(
        series[0].len() >= 2,
        "no post-restart sample: the path never re-dialed ({} samples, {} errors)",
        series[0].len(),
        series[0].errors()
    );
    assert!(
        series[0].errors() >= 1,
        "killing the receiver mid-run must surface at least one error"
    );
    assert_eq!(
        series[1].errors(),
        0,
        "the stable path must never notice the other receiver's restart"
    );
    assert!(!series[1].is_empty(), "the stable path was never measured");

    handle_a2.stop().unwrap();
    handle_b.stop().unwrap();
}
