//! Soak: one `EventedReceiver` thread holding **thousands** of live
//! sessions while a measurement fleet runs through the same shared UDP
//! datapath.
//!
//! This is the scale pin for the one-thread far end: ≥4096 concurrent
//! control sessions (each minted its own token at `Hello`), the
//! `receiver_sessions` gauge reading the full population, arbitrary
//! sessions still responsive to `Echo` under that load, and a concurrent
//! async-driver fleet completing real measurements with its per-path
//! `pacing_error_ns{path}` histograms populated — the same quantiles a
//! `--metrics` scrape of a production daemon serves.
//!
//! Ignored by default: it needs ~8200 file descriptors (raise `ulimit
//! -n`) and several wall-clock seconds. The CI soak job runs it with
//! `cargo test --release -q --test socket_soak -- --ignored`.

#![cfg(target_os = "linux")]

use availbw::monitord::{
    run_socket_fleet_async_with_telemetry, FleetEvent, FleetTelemetry, ScheduleConfig,
    SeriesConfig, ShutdownFlag, SocketPathSpec,
};
use availbw::pathload_net::proto::{CtrlMsg, PROTO_VERSION};
use availbw::pathload_net::EventedReceiver;
use availbw::slops::SlopsConfig;
use availbw::units::{Rate, TimeNs};
use std::net::TcpStream;
use std::time::Duration;

const SESSIONS: usize = 4096;
const FLEET: usize = 4;

fn gentle_cfg() -> SlopsConfig {
    let mut cfg = SlopsConfig::default();
    cfg.stream_len = 20;
    cfg.fleet_len = 3;
    cfg.min_period = TimeNs::from_millis(1);
    cfg.resolution = Rate::from_mbps(10.0);
    cfg.grey_resolution = Rate::from_mbps(20.0);
    cfg.max_fleets = 4;
    cfg
}

/// The value of the first sample line of `family` in a Prometheus
/// snapshot.
fn scrape(text: &str, family: &str) -> i64 {
    text.lines()
        .find(|l| l.starts_with(family) && !l.starts_with('#'))
        .and_then(|l| l.rsplit_once(' '))
        .map(|(_, v)| v.parse().expect("metric value"))
        .unwrap_or_else(|| panic!("no {family} line in scrape"))
}

#[test]
#[ignore = "soak: ≥4096 concurrent sessions, ~8200 fds; run via the CI soak job"]
fn evented_receiver_sustains_4096_sessions_on_one_thread() {
    let telemetry = FleetTelemetry::new();
    let rx = EventedReceiver::bind("127.0.0.1:0".parse().unwrap()).unwrap();
    rx.register_metrics(telemetry.registry());
    let handle = rx.spawn();
    let addr = handle.ctrl_addr();

    // Fill the far end: 4096 control connections, each a full session
    // (Hello read and version-checked), all held open.
    let mut held = Vec::with_capacity(SESSIONS);
    for i in 0..SESSIONS {
        let mut ctrl = TcpStream::connect(addr)
            .unwrap_or_else(|e| panic!("connect {i}/{SESSIONS}: {e} (raise ulimit -n?)"));
        ctrl.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        match CtrlMsg::read_from(&mut ctrl) {
            Ok(CtrlMsg::Hello { version, .. }) => assert_eq!(version, PROTO_VERSION),
            other => panic!("session {i}: expected Hello, got {other:?}"),
        }
        held.push(ctrl);
    }

    // The sessions gauge reads the full population.
    let live = scrape(
        &telemetry.registry().render_prometheus(),
        "receiver_sessions ",
    );
    assert!(
        live >= SESSIONS as i64,
        "receiver_sessions gauge reads {live}, want >= {SESSIONS}"
    );

    // Arbitrary sessions are still responsive under the load.
    for (i, ctrl) in held.iter_mut().enumerate().step_by(512) {
        CtrlMsg::Echo { token: i as u64 }.write_to(ctrl).unwrap();
        match CtrlMsg::read_from(ctrl).unwrap() {
            CtrlMsg::Echo { token } => assert_eq!(token, i as u64),
            other => panic!("session {i}: expected Echo, got {other:?}"),
        }
    }

    // A real measurement fleet runs through the same receiver while the
    // 4096 idle sessions sit on it.
    let specs: Vec<SocketPathSpec> = (0..FLEET)
        .map(|i| SocketPathSpec {
            label: format!("soak{i}"),
            ctrl_addr: addr,
            cfg: gentle_cfg(),
            rate_cap: Some(Rate::from_mbps(30.0)),
        })
        .collect();
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(2),
        jitter: TimeNs::from_millis(100),
        max_concurrent: 2,
        seed: 5,
    };
    let series = run_socket_fleet_async_with_telemetry(
        specs,
        &sched,
        &SeriesConfig::default(),
        TimeNs::from_secs(6),
        &ShutdownFlag::new(),
        Some(&telemetry),
        |ev| {
            if let FleetEvent::Failed { path, error, .. } = ev {
                panic!("path {path} failed under soak load: {error}");
            }
        },
    )
    .unwrap();
    for s in &series {
        assert!(!s.is_empty(), "{}: never measured under load", s.label());
        assert_eq!(s.errors(), 0, "{}: errored under load", s.label());
    }

    // The p99 pacing error is readable exactly as a `--metrics` scrape
    // would read it: per-path quantiles plus the raw histogram lines.
    let quantiles = telemetry.pacing_quantiles();
    assert_eq!(quantiles.len(), FLEET, "pacing quantiles: {quantiles:?}");
    let text = telemetry.registry().render_prometheus();
    for p in 0..FLEET {
        let count = scrape(&text, &format!("pacing_error_ns_count{{path=\"soak{p}\"}}"));
        assert!(count > 0, "path soak{p} paced no packets");
    }
    let routed = scrape(&text, "receiver_demux_routed_total");
    assert!(routed > 0, "no probe traffic routed during the soak");

    drop(held);
    handle.stop().unwrap();
}
