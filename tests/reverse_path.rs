//! SLoPS measures one-way delays, not round-trip times: congestion on the
//! reverse path must not disturb the forward avail-bw estimate. This is a
//! defining property of the methodology (§IV "Clock and Timing Issues" —
//! only OWD *differences* matter) and the reason pathload timestamps at
//! the receiver instead of echoing packets.

use availbw::simprobe::scenarios::reverse_loaded_path;
use availbw::slops::{Session, SlopsConfig};
use availbw::units::Rate;

fn measure(fwd_util: f64, rev_util: f64, seed: u64) -> (f64, f64) {
    let mut t = reverse_loaded_path(Rate::from_mbps(10.0), fwd_util, rev_util, seed);
    let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
    (est.low.mbps(), est.high.mbps())
}

#[test]
fn reverse_congestion_does_not_change_the_estimate() {
    // Forward: 40% load => A = 6 Mb/s. Reverse: idle vs 85% loaded.
    let mut mids_idle = Vec::new();
    let mut mids_loaded = Vec::new();
    for seed in 0..3 {
        let (lo, hi) = measure(0.4, 0.0, 100 + seed);
        mids_idle.push((lo + hi) / 2.0);
        let (lo, hi) = measure(0.4, 0.85, 200 + seed);
        mids_loaded.push((lo + hi) / 2.0);
    }
    let idle = availbw::units::mean(&mids_idle);
    let loaded = availbw::units::mean(&mids_loaded);
    assert!(
        (idle - loaded).abs() < 1.2,
        "reverse congestion moved the estimate: {idle:.2} vs {loaded:.2} Mb/s"
    );
    // And both track the true forward avail-bw of 6 Mb/s.
    assert!((idle - 6.0).abs() < 1.5, "idle-reverse estimate {idle:.2}");
    assert!(
        (loaded - 6.0).abs() < 1.5,
        "loaded-reverse estimate {loaded:.2}"
    );
}

#[test]
fn forward_congestion_is_what_the_estimate_tracks() {
    // Sanity inversion: moving the load to the forward path must move the
    // estimate.
    let (_, hi_light) = measure(0.2, 0.85, 300);
    let (lo_heavy, _) = measure(0.8, 0.85, 301);
    assert!(
        hi_light > 6.0,
        "light forward load should leave > 6 Mb/s, got high {hi_light:.2}"
    );
    assert!(
        lo_heavy < 4.0,
        "heavy forward load should leave < 4 Mb/s, got low {lo_heavy:.2}"
    );
}
