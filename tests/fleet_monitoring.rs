//! Fleet monitoring end to end: the `monitord` daemon subsystem over the
//! sans-IO machine.
//!
//! (a) N staggered in-sim sessions on disjoint loaded paths each converge
//!     to a range containing that path's true avail-bw;
//! (b) on a shared tight link, a mid-run cross-traffic step is flagged by
//!     the change detector;
//! (c) the in-sim and thread-backed drivers produce identical per-path
//!     series for the same seeds on disjoint paths — the fleet-level
//!     extension of the driver-equivalence invariant.

use availbw::monitord::{
    run_fleet, ChangeDirection, ScheduleConfig, SeriesConfig, SimFleetMonitor, SimPathSpec,
    ThreadPathSpec,
};
use availbw::netsim::{Chain, ChainConfig, LinkConfig, Simulator};
use availbw::simprobe::scenarios::{
    build_disjoint_paths, shared_tight_link, step_link_load, LinkLoad, PathOpts,
    SharedTightLinkConfig,
};
use availbw::simprobe::{ProbeReceiver, SimTransport};
use availbw::slops::SlopsConfig;
use availbw::traffic::SourceConfig;
use availbw::units::{Rate, TimeNs};

/// (a) Disjoint loaded paths in one simulation: every path's monitoring
/// series brackets that path's true avail-bw, and the starts really are
/// staggered across paths.
#[test]
fn staggered_sessions_converge_per_path() {
    let mut sim = Simulator::new(1001);
    // Three 2-hop paths with different capacities and loads:
    // A = 6, 10, and 16 Mb/s.
    let specs: [(f64, f64); 3] = [(10.0, 0.40), (20.0, 0.50), (20.0, 0.20)];
    let loads: Vec<Vec<LinkLoad>> = specs
        .iter()
        .map(|&(cap, util)| {
            vec![
                LinkLoad::pareto(Rate::from_mbps(40.0), 0.10, 5),
                LinkLoad::pareto(Rate::from_mbps(cap), util, 5),
            ]
        })
        .collect();
    let chains = build_disjoint_paths(&mut sim, &loads, &PathOpts::default());
    let paths = chains
        .into_iter()
        .enumerate()
        .map(|(i, chain)| SimPathSpec {
            label: format!("path{i}"),
            chain,
            cfg: SlopsConfig::default(),
        })
        .collect();
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(45),
        jitter: TimeNs::from_secs(3),
        max_concurrent: 0,
        seed: 5,
    };
    let horizon = sim.now() + TimeNs::from_secs(100);
    let mut mon = SimFleetMonitor::new(sim, paths, &sched, &SeriesConfig::default(), horizon)
        .expect("valid fleet");
    mon.run_to_completion();

    let mut first_starts = Vec::new();
    for (i, series) in mon.series().iter().enumerate() {
        let a = specs[i].0 * (1.0 - specs[i].1);
        assert!(series.len() >= 2, "path {i}: only {} samples", series.len());
        assert_eq!(series.errors(), 0, "path {i} lost measurements");
        let (lo, hi) = series.envelope().expect("non-empty series");
        assert!(
            lo.mbps() <= a + 0.5 && a - 0.5 <= hi.mbps(),
            "path {i}: envelope [{lo}, {hi}] should contain A = {a} Mb/s"
        );
        // The windowed average is in the right neighborhood too.
        let avg = series.window_average(TimeNs::ZERO, TimeNs::MAX).mbps();
        assert!(
            (avg - a).abs() < a * 0.5,
            "path {i}: window average {avg:.2} vs A = {a}"
        );
        first_starts.push(series.samples().next().unwrap().started);
    }
    // Staggering: the three first starts are distinct instants.
    first_starts.sort();
    first_starts.dedup();
    assert_eq!(first_starts.len(), 3, "starts were not staggered");
}

/// (b) Two paths over one tight link; midway, the tight-link load steps
/// from 20% to ~60% (A: 8 → 4 Mb/s). The change detector flags a
/// downward shift after the step, on at least one path.
#[test]
fn shared_tight_link_step_is_flagged() {
    let mut sim = Simulator::new(2002);
    let cfg = SharedTightLinkConfig {
        paths: 2,
        tight: LinkLoad::pareto(Rate::from_mbps(10.0), 0.20, 10),
        ..SharedTightLinkConfig::default()
    };
    let shared = shared_tight_link(&mut sim, &cfg);
    let paths = shared
        .chains
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, chain)| SimPathSpec {
            label: format!("shared{i}"),
            chain,
            cfg: SlopsConfig::default(),
        })
        .collect();
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(30),
        jitter: TimeNs::from_secs(2),
        // One probe stream at a time: concurrent streams would load the
        // shared tight link with each other's probes.
        max_concurrent: 1,
        seed: 9,
    };
    let series_cfg = SeriesConfig {
        capacity: 0,
        window: TimeNs::from_secs(150),
    };
    let t0 = sim.now();
    let step_at = t0 + TimeNs::from_secs(150);
    let horizon = t0 + TimeNs::from_secs(300);
    let mut mon =
        SimFleetMonitor::new(sim, paths, &sched, &series_cfg, horizon).expect("valid fleet");

    // First phase: A = 8 Mb/s.
    mon.run_until(step_at);
    // Step: +4 Mb/s of cross traffic => utilization ~60%, A ~ 4 Mb/s.
    step_link_load(
        mon.sim_mut(),
        shared.tight,
        shared.cross_sink,
        Rate::from_mbps(4.0),
        10,
        &SourceConfig::paper_pareto(),
    );
    mon.run_to_completion();

    let flagged = mon.series().iter().any(|s| {
        s.changes()
            .iter()
            .any(|c| c.direction == ChangeDirection::Down && c.at >= step_at)
    });
    assert!(
        flagged,
        "no path flagged the avail-bw step; series: {:?}",
        mon.series()
            .iter()
            .map(|s| s
                .samples()
                .map(|r| (r.started, r.low, r.high))
                .collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );
}

/// (c) Driver equivalence at the fleet level: on disjoint (unloaded)
/// paths, the in-sim driver (one simulator hosting all sessions) and the
/// thread-backed driver (one blocking simulator shim per path) produce
/// identical per-path series under the same schedule.
#[test]
fn in_sim_and_thread_drivers_produce_identical_series() {
    const CAPS: [f64; 4] = [8.0, 12.0, 16.0, 24.0];
    let chain_cfg = |mbps: f64| {
        ChainConfig::symmetric(vec![
            LinkConfig::new(Rate::from_mbps(mbps + 4.0), TimeNs::from_millis(5)),
            LinkConfig::new(Rate::from_mbps(mbps), TimeNs::from_millis(5)),
        ])
    };
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(20),
        jitter: TimeNs::from_secs(3),
        max_concurrent: 2,
        seed: 77,
    };
    let series_cfg = SeriesConfig::default();
    let horizon = TimeNs::from_secs(60);

    // In-sim: all four paths in one simulator.
    let in_sim = {
        let mut sim = Simulator::new(42);
        let paths = CAPS
            .iter()
            .enumerate()
            .map(|(i, &mbps)| SimPathSpec {
                label: format!("p{i}"),
                chain: Chain::build(&mut sim, &chain_cfg(mbps)),
                cfg: SlopsConfig::default(),
            })
            .collect();
        let mut mon = SimFleetMonitor::new(sim, paths, &sched, &series_cfg, horizon).unwrap();
        mon.run_to_completion();
        mon.into_series()
    };

    // Thread-backed: one blocking simulator shim per path.
    let threaded = {
        let paths = CAPS
            .iter()
            .enumerate()
            .map(|(i, &mbps)| {
                let mut sim = Simulator::new(42);
                let chain = Chain::build(&mut sim, &chain_cfg(mbps));
                let rx = sim.add_app(Box::new(ProbeReceiver::default()));
                ThreadPathSpec {
                    label: format!("p{i}"),
                    cfg: SlopsConfig::default(),
                    transport: Box::new(SimTransport::new(sim, chain, rx)),
                }
            })
            .collect();
        run_fleet(paths, &sched, &series_cfg, horizon, 2).unwrap()
    };

    assert_eq!(in_sim.len(), threaded.len());
    for (a, b) in in_sim.iter().zip(&threaded) {
        assert!(a.len() >= 2, "{}: too few samples ({})", a.label(), a.len());
        let sa: Vec<_> = a.samples().collect();
        let sb: Vec<_> = b.samples().collect();
        assert_eq!(sa, sb, "per-path series diverged on {}", a.label());
        assert_eq!(a.errors(), b.errors());
    }
}

/// (c′) Driver equivalence under **overrun**: path 0 has a huge RTT, so
/// its measurements outlast the period while the fast paths keep cycling.
/// The thread driver must still reschedule the fast paths while the slow
/// measurement is outstanding — feeding completions to the scheduler in
/// the same tick-granular order the in-sim driver observes them —
/// or the per-path series diverge (regression test for the wave-barrier
/// scheduling bug).
#[test]
fn drivers_agree_when_a_measurement_overruns_its_period() {
    // (capacity, per-hop propagation): path 0 is slow, path 1 fast.
    const SPECS: [(f64, u64); 2] = [(8.0, 400), (16.0, 5)];
    let chain_cfg = |(mbps, prop_ms): (f64, u64)| {
        ChainConfig::symmetric(vec![
            LinkConfig::new(Rate::from_mbps(mbps + 4.0), TimeNs::from_millis(prop_ms)),
            LinkConfig::new(Rate::from_mbps(mbps), TimeNs::from_millis(prop_ms)),
        ])
    };
    // Period between the fast path's ~7.8 s measurements and the slow
    // path's ~10.5 s ones: only path 0 overruns. With both paths free to
    // run concurrently, the slow path's next due comes up *before* the
    // fast path's — a batch-fed scheduler would hand the slow path the
    // early-freed slot and stall the fast path behind the slow finish.
    let sched = ScheduleConfig {
        period: TimeNs::from_secs(8),
        jitter: TimeNs::from_secs(1),
        max_concurrent: 0,
        seed: 13,
    };
    let series_cfg = SeriesConfig::default();
    let horizon = TimeNs::from_secs(60);

    let in_sim = {
        let mut sim = Simulator::new(7);
        let paths = SPECS
            .iter()
            .enumerate()
            .map(|(i, &spec)| SimPathSpec {
                label: format!("p{i}"),
                chain: Chain::build(&mut sim, &chain_cfg(spec)),
                cfg: SlopsConfig::default(),
            })
            .collect();
        let mut mon = SimFleetMonitor::new(sim, paths, &sched, &series_cfg, horizon).unwrap();
        mon.run_to_completion();
        mon.into_series()
    };
    let threaded = {
        let paths = SPECS
            .iter()
            .enumerate()
            .map(|(i, &spec)| {
                let mut sim = Simulator::new(7);
                let chain = Chain::build(&mut sim, &chain_cfg(spec));
                let rx = sim.add_app(Box::new(ProbeReceiver::default()));
                ThreadPathSpec {
                    label: format!("p{i}"),
                    cfg: SlopsConfig::default(),
                    transport: Box::new(SimTransport::new(sim, chain, rx)),
                }
            })
            .collect();
        run_fleet(paths, &sched, &series_cfg, horizon, 0).unwrap()
    };

    // Premises: the slow path overruns the period, the fast ones do not.
    let slow = &in_sim[0];
    assert!(
        slow.samples().all(|r| r.duration > sched.period),
        "test premise broken: path 0 should overrun the period"
    );
    assert!(
        in_sim[1].samples().all(|r| r.duration < sched.period),
        "test premise broken: path 1 should not overrun"
    );
    for (a, b) in in_sim.iter().zip(&threaded) {
        let sa: Vec<_> = a.samples().collect();
        let sb: Vec<_> = b.samples().collect();
        assert_eq!(sa, sb, "series diverged under overrun on {}", a.label());
    }
}
