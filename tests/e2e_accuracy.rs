//! End-to-end accuracy: the full pathload session over the packet-level
//! simulator must bracket the configured avail-bw on the paper's
//! topologies (the property behind Figs. 5–7).

use availbw::simprobe::scenarios::{PaperPath, PaperPathConfig};
use availbw::slops::runner::{run_sessions, SessionJob};
use availbw::slops::{Session, SlopsConfig, Termination};
use availbw::units::stats::mean;

/// Average the reported bounds over a few seeds (the paper always reports
/// multi-run averages; single runs legitimately straddle A). The seeds run
/// concurrently on the batch runner, one simulator per worker.
fn avg_range(cfg: &PaperPathConfig, seeds: &[u64]) -> (f64, f64) {
    let jobs: Vec<SessionJob> = seeds
        .iter()
        .map(|&seed| {
            let cfg = cfg.clone();
            SessionJob::new(format!("seed{seed}"), SlopsConfig::default(), move || {
                PaperPath::build(&cfg, seed).into_transport()
            })
        })
        .collect();
    let (lows, highs): (Vec<f64>, Vec<f64>) = run_sessions(jobs, 0)
        .iter()
        .filter_map(|o| {
            // A lost session must not tear down the whole average (and the
            // assertion message that goes with it): report it and go on.
            match o.estimate() {
                Some(est) => Some((est.low.mbps(), est.high.mbps())),
                None => {
                    eprintln!("{} failed: {}", o.label, o.error().expect("error"));
                    None
                }
            }
        })
        .unzip();
    assert!(!lows.is_empty(), "every session failed");
    (mean(&lows), mean(&highs))
}

#[test]
fn brackets_avail_bw_at_default_load() {
    let cfg = PaperPathConfig::default(); // A = 4 Mb/s
    let (lo, hi) = avg_range(&cfg, &[11, 22, 33, 44, 55]);
    assert!(
        lo <= 4.3 && 3.7 <= hi,
        "average range [{lo:.2}, {hi:.2}] should bracket 4 Mb/s"
    );
    assert!(hi - lo < 5.0, "range [{lo:.2}, {hi:.2}] absurdly wide");
}

#[test]
fn brackets_avail_bw_at_light_load() {
    let mut cfg = PaperPathConfig::default();
    cfg.tight_util = 0.20; // A = 8 Mb/s
    let (lo, hi) = avg_range(&cfg, &[1, 2, 3]);
    assert!(
        lo <= 8.4 && 7.6 <= hi,
        "average range [{lo:.2}, {hi:.2}] should bracket 8 Mb/s"
    );
}

#[test]
fn brackets_avail_bw_with_poisson_traffic() {
    let mut cfg = PaperPathConfig::default();
    cfg.source_cfg = availbw::traffic::SourceConfig::paper_poisson();
    let (lo, hi) = avg_range(&cfg, &[7, 8, 9]);
    assert!(
        lo <= 4.4 && 3.6 <= hi,
        "average range [{lo:.2}, {hi:.2}] should bracket 4 Mb/s"
    );
}

#[test]
fn three_hop_path_works_too() {
    let mut cfg = PaperPathConfig::default();
    cfg.hops = 3;
    let (lo, hi) = avg_range(&cfg, &[13, 14, 15]);
    assert!(
        lo <= 4.4 && 3.6 <= hi,
        "average range [{lo:.2}, {hi:.2}] should bracket 4 Mb/s"
    );
}

#[test]
fn terminates_within_fleet_budget_and_reports_trace() {
    let cfg = PaperPathConfig::default();
    let mut t = PaperPath::build(&cfg, 77).into_transport();
    let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
    assert!(est.fleets.len() >= 2);
    assert!(est.fleets.len() <= 64);
    assert!(!matches!(est.termination, Termination::FleetBudget));
    // Trace invariants: every fleet has as many loss entries as classes,
    // and the verdict sequence is consistent with the final bounds.
    for f in &est.fleets {
        assert_eq!(f.stream_classes.len(), f.losses.len());
        assert!(f.rate.bps() > 0.0);
    }
    assert!(est.low.bps() <= est.high.bps());
    if let Some((glo, ghi)) = est.grey {
        assert!(est.low.bps() <= glo.bps() + 1.0);
        assert!(ghi.bps() <= est.high.bps() + 1.0);
    }
}

#[test]
fn measurement_is_reproducible_given_a_seed() {
    let cfg = PaperPathConfig::default();
    let run = |seed| {
        let mut t = PaperPath::build(&cfg, seed).into_transport();
        let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
        (est.low.bps(), est.high.bps(), est.fleets.len())
    };
    assert_eq!(run(123), run(123));
}
