//! pathload over a RED bottleneck: the methodology needs OWD *growth*,
//! which RED preserves even while bounding the queue (extension test).

use availbw::netsim::app::CountingSink;
use availbw::netsim::{Chain, ChainConfig, LinkConfig, RedConfig, Simulator};
use availbw::simprobe::{ProbeReceiver, SimTransport};
use availbw::slops::{Session, SlopsConfig};
use availbw::traffic::{attach_sources, SourceConfig};
use availbw::units::{Rate, TimeNs};

#[test]
fn pathload_still_works_over_red() {
    let mut sim = Simulator::new(33);
    let limit = 512 * 1024u64;
    let chain = Chain::build(
        &mut sim,
        &ChainConfig::symmetric(vec![
            LinkConfig::new(Rate::from_mbps(40.0), TimeNs::from_millis(5)),
            LinkConfig::new(Rate::from_mbps(10.0), TimeNs::from_millis(10))
                .with_queue_limit(limit)
                .with_red(RedConfig::for_queue_limit(limit)),
            LinkConfig::new(Rate::from_mbps(40.0), TimeNs::from_millis(5)),
        ]),
    );
    let sink = sim.add_app(Box::new(CountingSink::default()));
    let route = chain.hop_route(&sim, 1, sink);
    attach_sources(
        &mut sim,
        route,
        Rate::from_mbps(6.0),
        10,
        &SourceConfig::paper_poisson(),
    );
    let rx = sim.add_app(Box::new(ProbeReceiver::default()));
    sim.run_until(TimeNs::from_secs(2));
    let mut t = SimTransport::new(sim, chain, rx);
    let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
    // A = 4 Mb/s; RED's early drops on probe streams are rare at this
    // load, and SLoPS only needs relative OWD growth, which RED preserves.
    assert!(
        est.low.mbps() <= 4.6 && 3.4 <= est.high.mbps(),
        "over RED: [{}, {}]",
        est.low,
        est.high
    );
}
