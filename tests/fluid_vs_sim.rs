//! The packet-level simulator must converge to the analytic fluid model
//! (paper Appendix) when fed fluid-like (CBR, small-packet) cross traffic.

use availbw::fluid::{FluidLink, FluidPath};
use availbw::netsim::app::CountingSink;
use availbw::netsim::{Chain, ChainConfig, LinkConfig, Simulator};
use availbw::simprobe::{ProbeReceiver, SimTransport};
use availbw::slops::{stream_params, ProbeTransport, SlopsConfig};
use availbw::traffic::{attach_sources, SourceConfig};
use availbw::units::{Rate, TimeNs};

/// Two-hop path with CBR cross traffic on each hop; returns the transport
/// and the matching fluid path.
fn fluid_like_path(seed: u64) -> (SimTransport, FluidPath) {
    let caps = [Rate::from_mbps(20.0), Rate::from_mbps(10.0)];
    let utils = [0.3, 0.6];
    let mut sim = Simulator::new(seed);
    let chain = Chain::build(
        &mut sim,
        &ChainConfig::symmetric(
            caps.iter()
                .map(|c| LinkConfig::new(*c, TimeNs::from_millis(5)))
                .collect(),
        ),
    );
    let sink = sim.add_app(Box::new(CountingSink::default()));
    for hop in 0..2 {
        let route = chain.hop_route(&sim, hop, sink);
        // Small packets at constant spacing approximate fluid.
        let mut cfg = SourceConfig::cbr(100);
        cfg.start_jitter = TimeNs::from_micros(50);
        attach_sources(&mut sim, route, caps[hop] * utils[hop], 4, &cfg);
    }
    let rx = sim.add_app(Box::new(ProbeReceiver::default()));
    sim.run_until(TimeNs::from_secs(1));
    let transport = SimTransport::new(sim, chain, rx);
    let fluid = FluidPath::new(
        caps.iter()
            .zip(utils)
            .map(|(c, u)| FluidLink::new(*c, *c * (1.0 - u)))
            .collect(),
    );
    (transport, fluid)
}

#[test]
fn owd_ramp_matches_fluid_prediction_above_avail_bw() {
    let (mut t, fluid) = fluid_like_path(5);
    let a = fluid.avail_bw(); // 4 Mb/s (10 * 0.4)
    assert_eq!(a.mbps(), 4.0);
    let cfg = SlopsConfig::default();
    for rate_mbps in [5.0, 7.0, 9.0] {
        let rate = Rate::from_mbps(rate_mbps);
        let req = stream_params(rate, 0, &cfg);
        let rec = t.send_stream(&req).unwrap();
        let owds = rec.owds();
        let measured = (owds[owds.len() - 1] - owds[0]) as f64; // ns
        let predicted =
            fluid.owd_slope(req.actual_rate(), req.packet_size) * (owds.len() - 1) as f64 * 1e9;
        let err = (measured - predicted).abs() / predicted;
        assert!(
            err < 0.15,
            "rate {rate_mbps}: measured ramp {measured:.0}ns vs fluid {predicted:.0}ns (err {err:.2})"
        );
        t.idle(TimeNs::from_millis(500));
    }
}

#[test]
fn owd_flat_below_avail_bw_as_fluid_predicts() {
    let (mut t, fluid) = fluid_like_path(6);
    let cfg = SlopsConfig::default();
    let req = stream_params(Rate::from_mbps(3.0), 0, &cfg);
    assert_eq!(fluid.owd_slope(req.actual_rate(), req.packet_size), 0.0);
    let rec = t.send_stream(&req).unwrap();
    let owds = rec.owds();
    let spread = owds.iter().max().unwrap() - owds.iter().min().unwrap();
    // CBR cross traffic: queueing jitter stays within a few packet times.
    assert!(
        spread < 500_000,
        "OWD spread {spread}ns for a sub-avail-bw stream on a CBR path"
    );
}

#[test]
fn train_dispersion_matches_fluid_exit_rate() {
    let (mut t, fluid) = fluid_like_path(7);
    let rec = t.send_train(96, 1500).unwrap();
    let adr = rec.dispersion_rate().unwrap();
    // A long back-to-back train enters at the first link's capacity.
    let predicted = fluid.exit_rate(Rate::from_mbps(20.0));
    let err = (adr.bps() - predicted.bps()).abs() / predicted.bps();
    assert!(
        err < 0.10,
        "train ADR {adr} vs fluid exit rate {predicted} (err {err:.2})"
    );
    // And the classic result: ADR overestimates the avail-bw.
    assert!(adr.bps() > fluid.avail_bw().bps());
}
