//! Property-based tests (proptest) on the core invariants, spanning
//! crates: trend statistics, the rate search, the session over the oracle
//! transport, the fluid model, and the simulator's FIFO discipline.

use availbw::fluid::{FluidLink, FluidPath};
use availbw::slops::testutil::OracleTransport;
use availbw::slops::{pct_metric, pdt_metric, FleetOutcome, RateSearch, Session, SlopsConfig};
use availbw::units::Rate;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PCT is always a fraction in [0, 1]; PDT always in [-1, 1].
    #[test]
    fn trend_metrics_stay_in_range(medians in prop::collection::vec(-1e9f64..1e9, 2..40)) {
        let pct = pct_metric(&medians).unwrap();
        prop_assert!((0.0..=1.0).contains(&pct));
        if let Some(pdt) = pdt_metric(&medians) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&pdt));
        }
    }

    /// Strictly increasing medians always give the extreme statistics.
    #[test]
    fn monotone_series_maximizes_both_metrics(
        start in -1e6f64..1e6,
        steps in prop::collection::vec(1e-3f64..1e6, 3..30),
    ) {
        let mut medians = vec![start];
        for s in &steps {
            medians.push(medians.last().unwrap() + s);
        }
        prop_assert_eq!(pct_metric(&medians).unwrap(), 1.0);
        prop_assert!((pdt_metric(&medians).unwrap() - 1.0).abs() < 1e-9);
    }

    /// The grey-aware bisection always terminates against an arbitrary
    /// (even adversarial) verdict sequence, keeps its bounds ordered, and
    /// never needs more than a modest number of fleets.
    #[test]
    fn rate_search_always_terminates(verdicts in prop::collection::vec(0u8..4, 0..64)) {
        let mut s = RateSearch::new(
            Rate::from_mbps(120.0),
            Rate::from_mbps(1.0),
            Rate::from_mbps(1.5),
            Some(Rate::from_mbps(120.0)),
        );
        let mut i = 0;
        let mut fleets = 0;
        while let Some(r) = s.next_rate() {
            fleets += 1;
            prop_assert!(fleets <= 256, "runaway search");
            let outcome = match verdicts.get(i).copied().unwrap_or(0) % 4 {
                0 => FleetOutcome::AboveAvailBw,
                1 => FleetOutcome::BelowAvailBw,
                2 => FleetOutcome::Grey,
                _ => FleetOutcome::AbortedLossy,
            };
            i += 1;
            s.record(r, outcome);
            let (lo, hi) = s.bounds();
            prop_assert!(lo.bps() <= hi.bps() + 1e-6);
            if let Some((glo, ghi)) = s.grey_bounds() {
                prop_assert!(lo.bps() <= glo.bps() + 1e-6);
                prop_assert!(glo.bps() <= ghi.bps() + 1e-6);
                prop_assert!(ghi.bps() <= hi.bps() + 1e-6);
            }
        }
    }

    /// Against a truthful oracle with arbitrary avail-bw, the binary
    /// search brackets it within resolution.
    #[test]
    fn rate_search_brackets_truthful_oracle(a_mbps in 2.0f64..110.0) {
        let mut s = RateSearch::new(
            Rate::from_mbps(120.0),
            Rate::from_mbps(1.0),
            Rate::from_mbps(1.5),
            None,
        );
        while let Some(r) = s.next_rate() {
            let outcome = if r.mbps() > a_mbps {
                FleetOutcome::AboveAvailBw
            } else {
                FleetOutcome::BelowAvailBw
            };
            s.record(r, outcome);
        }
        let (lo, hi) = s.bounds();
        prop_assert!(lo.mbps() <= a_mbps && a_mbps <= hi.mbps());
        prop_assert!((hi - lo).mbps() <= 1.0 + 1e-9);
    }

    /// The full session over the synthetic oracle brackets the avail-bw
    /// for arbitrary avail-bw, clock offset, and mild loss.
    #[test]
    fn session_brackets_oracle_avail_bw(
        a_mbps in 5.0f64..100.0,
        offset in -1_000_000_000i64..1_000_000_000,
        seed in 0u64..1000,
    ) {
        let mut t = OracleTransport::new(Rate::from_mbps(a_mbps), seed);
        t.clock_offset_ns = offset;
        let est = Session::new(SlopsConfig::default()).run(&mut t).unwrap();
        prop_assert!(
            est.low.mbps() <= a_mbps + 1.5 && a_mbps - 1.5 <= est.high.mbps(),
            "A={} reported [{}, {}]", a_mbps, est.low, est.high
        );
    }

    /// Fluid model: exit rate never exceeds entry rate, never drops below
    /// the path avail-bw when probing above it, and the OWD slope is
    /// positive exactly when R > A.
    #[test]
    fn fluid_rate_recursion_invariants(
        caps in prop::collection::vec(1.0f64..1000.0, 1..8),
        utils in prop::collection::vec(0.0f64..0.95, 8),
        r_mbps in 0.5f64..500.0,
    ) {
        let links: Vec<FluidLink> = caps
            .iter()
            .zip(&utils)
            .map(|(c, u)| FluidLink::new(Rate::from_mbps(*c), Rate::from_mbps(c * (1.0 - u))))
            .collect();
        let path = FluidPath::new(links);
        let r = Rate::from_mbps(r_mbps);
        let a = path.avail_bw();
        let out = path.exit_rate(r);
        prop_assert!(out.bps() <= r.bps() + 1e-6);
        if r.bps() > a.bps() {
            prop_assert!(out.bps() >= a.bps() - 1e-6, "exit {} < avail {}", out, a);
            prop_assert!(path.owd_slope(r, 1000) > 0.0);
        } else {
            prop_assert!((out.bps() - r.bps()).abs() < 1e-6);
            prop_assert_eq!(path.owd_slope(r, 1000), 0.0);
        }
        // Rates along the path are non-increasing hop over hop.
        let rates = path.rates_along(r);
        for w in rates.windows(2) {
            prop_assert!(w[1].bps() <= w[0].bps() + 1e-6);
        }
    }

    /// Simulator FIFO discipline: same-flow packets injected in order are
    /// delivered in order, whatever the sizes and spacings.
    #[test]
    fn simulator_preserves_per_flow_fifo(
        sizes in prop::collection::vec(40u32..1500, 2..50),
        gaps_us in prop::collection::vec(0u64..500, 50),
    ) {
        use availbw::netsim::app::RecordingSink;
        use availbw::netsim::{FlowId, LinkConfig, Packet, Simulator};
        use availbw::units::TimeNs;
        let mut sim = Simulator::new(9);
        let l1 = sim.add_link(LinkConfig::new(Rate::from_mbps(10.0), TimeNs::from_millis(1)));
        let l2 = sim.add_link(LinkConfig::new(Rate::from_mbps(7.0), TimeNs::from_millis(2)));
        let sink = sim.add_app(Box::new(RecordingSink::default()));
        let route = sim.route(&[l1, l2], sink);
        let mut t = TimeNs::ZERO;
        for (i, size) in sizes.iter().enumerate() {
            t += TimeNs::from_micros(gaps_us[i % gaps_us.len()]);
            sim.inject(Packet::new(*size, FlowId(1), i as u64, route.clone()), t);
        }
        sim.run_until_idle(TimeNs::from_secs(60));
        let rec = &sim.app::<RecordingSink>(sink).records;
        prop_assert_eq!(rec.len(), sizes.len());
        for (i, r) in rec.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64);
        }
        for w in rec.windows(2) {
            prop_assert!(w[0].recv_at <= w[1].recv_at);
        }
    }
}

/// What the model believes about one armed timer entry.
struct ModelEntry {
    deadline: u64,
    token: u64,
    cancelled: bool,
    popped: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Model-based check of `mux::TimerQueue`'s generation cancellation
    /// under random arm/cancel/pop interleavings (the structure the
    /// evented receiver hangs every silence window on): a cancelled entry
    /// is never popped, a cancel never kills an entry armed *later* under
    /// the same (reused) generation, pops within one drain never invert
    /// deadlines, nothing expired-and-live is left behind by a drain, and
    /// the queue drains to empty.
    #[test]
    fn timer_queue_generations_never_pop_cancelled_entries(
        ops in prop::collection::vec((0u8..3, 0u64..1_000, 1u64..8), 1..200),
    ) {
        use availbw::pathload_net::mux::TimerQueue;
        let mut q = TimerQueue::new();
        let mut model: Vec<(u64, ModelEntry)> = Vec::new(); // (generation, entry)
        let mut now = 0u64;
        let mut next_token = 0u64;
        for &(op, value, generation) in &ops {
            match op {
                // Arm at an absolute deadline (possibly already past).
                0 => {
                    next_token += 1;
                    q.arm_with_generation(value, next_token, generation);
                    model.push((generation, ModelEntry {
                        deadline: value,
                        token: next_token,
                        cancelled: false,
                        popped: false,
                    }));
                }
                // Cancel a generation: everything armed under it so far
                // dies; entries armed under it LATER must survive.
                1 => {
                    q.cancel_generation(generation);
                    for (g, e) in model.iter_mut() {
                        if *g == generation && !e.popped {
                            e.cancelled = true;
                        }
                    }
                }
                // Advance time and drain everything expired.
                _ => {
                    now += value;
                    let mut last_deadline = 0u64;
                    while let Some((token, deadline)) = q.pop_expired_at(now) {
                        prop_assert!(deadline <= now, "popped an unexpired entry");
                        prop_assert!(
                            deadline >= last_deadline,
                            "pops inverted deadlines within a drain"
                        );
                        last_deadline = deadline;
                        let (_, entry) = model
                            .iter_mut()
                            .find(|(_, e)| e.token == token)
                            .expect("popped a token that was never armed");
                        prop_assert!(!entry.popped, "entry popped twice");
                        prop_assert!(!entry.cancelled, "popped a cancelled entry");
                        prop_assert_eq!(entry.deadline, deadline, "deadline mangled");
                        entry.popped = true;
                    }
                    // The drain is exhaustive: nothing live and expired remains.
                    for (_, e) in &model {
                        prop_assert!(
                            e.popped || e.cancelled || e.deadline > now,
                            "drain left a live expired entry behind"
                        );
                    }
                }
            }
        }
        // Final drain: every surviving (non-cancelled) entry pops, the
        // cancelled ones are reaped, and the queue ends empty.
        while let Some((token, _)) = q.pop_expired_at(u64::MAX) {
            let (_, entry) = model
                .iter_mut()
                .find(|(_, e)| e.token == token)
                .expect("popped a token that was never armed");
            prop_assert!(!entry.popped && !entry.cancelled);
            entry.popped = true;
        }
        prop_assert!(q.is_empty(), "queue did not drain to empty");
        for (_, e) in &model {
            prop_assert!(e.popped || e.cancelled, "a live entry was lost");
        }
    }
}
